"""Infrastructure-level chaos injection.

``repro.faults`` treats *device* failures — stuck cells, pump droop,
process spread — as injectable, sweepable distributions rather than
exceptional states.  This package applies the same posture to the
*serving infrastructure*: worker processes die mid-solve, compute
futures are dropped or delayed, the coalescer's dispatch window stalls,
and ``.repro_cache`` entries are corrupted on read — all driven by a
seeded, replayable :class:`~repro.chaos.policy.ChaosPolicy` so a chaos
run is a deterministic test case, not a flake generator.

Call sites mirror :mod:`repro.obs`: the module-level injection points
(:func:`kill_point`, :func:`stall_point`, :func:`corrupt_point`,
:func:`fires`) are no-ops — one ``None`` check — until a policy is
:func:`install`-ed, so production paths pay nothing.  The active policy
is process-global; worker processes receive the policy on each job spec
and install it themselves.

Event accounting is kept in a process-local counter table
(:func:`counts`) rather than only in :mod:`repro.obs`, because chaos
events must stay visible even when no collector is active — the chaos
smoke driver asserts on them through the service's ``stats`` op.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from .policy import SITE_RATES, ChaosPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "SITE_RATES",
    "active_policy",
    "counts",
    "fires",
    "injected",
    "install",
    "kill_point",
    "exit_point",
    "stall_point",
    "corrupt_point",
    "reset_counts",
    "uninstall",
]

#: Exit status of a chaos-killed worker process — distinguishable from
#: a genuine crash in supervisor logs and smoke-test output.
KILL_EXIT_CODE = 77


class ChaosError(RuntimeError):
    """An injected infrastructure failure (never a real computation bug)."""


class _State:
    """Process-global chaos state: the active policy plus event counters.

    ``seq`` numbers give order-dependent sites (cache reads, dispatch
    rounds) a token stream; decision *sites that must replay exactly*
    (worker kills) use caller-provided tokens built from stable request
    identity instead.
    """

    def __init__(self) -> None:
        self.policy: ChaosPolicy | None = None
        self.lock = threading.Lock()
        self.counts: dict[str, int] = {}
        self.seq: dict[str, int] = {}

    def next_token(self, site: str) -> int:
        with self.lock:
            token = self.seq.get(site, 0)
            self.seq[site] = token + 1
            return token

    def record(self, site: str) -> None:
        with self.lock:
            self.counts[site] = self.counts.get(site, 0) + 1


_STATE = _State()


def install(policy: ChaosPolicy) -> None:
    """Activate ``policy`` process-wide (replacing any previous one)."""
    _STATE.policy = None if policy is None or policy.is_null else policy


def uninstall() -> None:
    """Deactivate chaos injection (counters are kept for inspection)."""
    _STATE.policy = None


def active_policy() -> "ChaosPolicy | None":
    return _STATE.policy


@contextmanager
def injected(policy: ChaosPolicy) -> Iterator[ChaosPolicy]:
    """Scope a policy to a ``with`` block (tests use this)."""
    previous = _STATE.policy
    install(policy)
    try:
        yield policy
    finally:
        _STATE.policy = previous


def counts() -> dict:
    """Fired-event counts per site since the last :func:`reset_counts`."""
    with _STATE.lock:
        return dict(_STATE.counts)


def reset_counts() -> None:
    with _STATE.lock:
        _STATE.counts.clear()
        _STATE.seq.clear()


# -- injection points ----------------------------------------------------------


def fires(site: str, token: object = None) -> bool:
    """Decide (and record) one event; no-op ``False`` without a policy.

    ``token=None`` draws from the site's process-local sequence —
    deterministic given the same event *order*.  Sites that must replay
    independently of scheduling (worker kills) pass an explicit token
    derived from stable request identity.
    """
    policy = _STATE.policy
    if policy is None:
        return False
    if token is None:
        token = _STATE.next_token(site)
    if not policy.fires(site, token):
        return False
    _STATE.record(site)
    return True


def kill_point(token: object) -> "threading.Timer | None":
    """Maybe kill *this process* mid-solve (worker processes only).

    The exit is scheduled on a timer ``kill_delay_ms`` out, so the job
    has genuinely started executing when the process dies — the
    supervisor observes an in-flight death, not a refused job.  The
    caller receives the armed timer and must ``cancel()`` it once the
    job completes, so a kill aimed at a fast job cannot leak into the
    worker's *next* job (that would charge an innocent plan's
    resubmission budget).  ``kill_delay_ms=0`` exits immediately.
    """
    policy = _STATE.policy
    if policy is None:
        return None
    if not fires("worker.kill", token):
        return None
    if policy.kill_delay_ms <= 0:
        os._exit(KILL_EXIT_CODE)
    timer = threading.Timer(
        policy.kill_delay_ms / 1000.0, os._exit, args=(KILL_EXIT_CODE,)
    )
    timer.daemon = True
    timer.start()
    return timer


def exit_point(site: str, token: object = None) -> None:
    """Maybe ``os._exit`` *right here* (worker processes only).

    Unlike :func:`kill_point` there is no delay timer: the exit happens
    synchronously at the call site, which is the whole point — it lets
    the shared-memory plane die *while holding a stripe write lock*
    (``shm.kill_in_lock``), the crash mode its degradation path exists
    for.
    """
    if _STATE.policy is None:
        return
    if fires(site, token):
        os._exit(KILL_EXIT_CODE)


def stall_point(site: str = "coalesce.stall") -> None:
    """Maybe stall the calling thread (dispatcher delay injection)."""
    policy = _STATE.policy
    if policy is None:
        return
    if fires(site):
        time.sleep(policy.stall_dispatch_ms / 1000.0)


def corrupt_point(path: "Path") -> None:
    """Maybe bit-flip a cache entry before its envelope is read.

    Corruption lands mid-file, so the pickle envelope parses as damaged
    (truncated stream or checksum mismatch) and the cache's quarantine
    machinery — not the caller — absorbs the failure.
    """
    policy = _STATE.policy
    if policy is None:
        return
    if not fires("cache.corrupt"):
        return
    try:
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size // 2)
            chunk = handle.read(8)
            handle.seek(size // 2)
            handle.write(bytes(b ^ 0xFF for b in chunk))
    except OSError:
        return
