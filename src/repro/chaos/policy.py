"""Declarative infrastructure chaos policy.

:class:`ChaosPolicy` is to the serving infrastructure what
:class:`~repro.faults.model.FaultModel` is to the array devices: a
frozen, picklable description of a *failure distribution* that can be
keyed, shipped to worker processes, and replayed.  Each injection site
(worker kill, future drop/delay, dispatcher stall, cache corruption)
carries a rate; whether a particular event fires is a pure function of
``(seed, site, token)``, so the same policy against the same request
stream produces the same failures — chaos runs are test cases, not
dice rolls.

Policies serialise to a compact ``key=value,...`` spec string
(``"seed=7,kill_worker_rate=0.5"``) so a chaos scenario fits on a CLI
flag (``python -m repro serve --chaos SPEC``) or in a CI job
definition and can be replayed verbatim.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

__all__ = ["ChaosPolicy"]

#: Injection site -> the policy field holding its firing rate.
SITE_RATES = {
    "worker.kill": "kill_worker_rate",
    "future.drop": "drop_future_rate",
    "future.delay": "delay_future_rate",
    "coalesce.stall": "stall_dispatch_rate",
    "cache.corrupt": "corrupt_cache_rate",
    "shm.kill_in_lock": "kill_in_lock_rate",
}


@dataclass(frozen=True)
class ChaosPolicy:
    """One seeded, replayable infrastructure failure distribution.

    Attributes
    ----------
    seed:
        Base seed for every firing decision (mixed per site and token).
    kill_worker_rate:
        Probability that one (plan, attempt) execution kills its worker
        process mid-solve (``os._exit`` after ``kill_delay_ms``; a zero
        delay exits immediately, before the plan runs at all).  Tokens
        include the attempt number, so a resubmitted plan draws a
        fresh decision and the system can converge unless the rate
        is 1.0.
    drop_future_rate:
        Probability that a completed compute future is failed with a
        :class:`~repro.chaos.ChaosError` instead of its result.
    delay_future_rate / delay_future_ms:
        Probability/duration of holding a completed future's resolution.
    stall_dispatch_rate / stall_dispatch_ms:
        Probability/duration of stalling the solve coalescer's dispatch
        window before it gathers a round.
    corrupt_cache_rate:
        Probability that a ``.repro_cache`` entry is bit-flipped on the
        read path *before* the envelope check runs — exercising the
        quarantine-and-recompute machinery under live traffic.
    kill_in_lock_rate:
        Probability that a worker publishing a profile block to the
        shared-memory data plane ``os._exit``\\ s *while holding the
        stripe write lock* — the nastiest crash the plane must survive
        (that stripe's lock is never released; writers degrade to the
        ship-back path, readers are unaffected).
    """

    seed: int = 0
    kill_worker_rate: float = 0.0
    kill_delay_ms: float = 5.0
    drop_future_rate: float = 0.0
    delay_future_rate: float = 0.0
    delay_future_ms: float = 25.0
    stall_dispatch_rate: float = 0.0
    stall_dispatch_ms: float = 25.0
    corrupt_cache_rate: float = 0.0
    kill_in_lock_rate: float = 0.0

    def __post_init__(self) -> None:
        for site, field in SITE_RATES.items():
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{field} must be in [0, 1], got {rate} (site {site})"
                )
        for field in ("kill_delay_ms", "delay_future_ms", "stall_dispatch_ms"):
            ms = getattr(self, field)
            if ms < 0:
                raise ValueError(f"{field} must be >= 0, got {ms}")

    # -- deterministic decisions -------------------------------------------------

    def draw(self, site: str, token: object) -> float:
        """A uniform [0, 1) draw, pure in ``(seed, site, token)``.

        Hashing (not ``random``) keeps the decision identical across
        processes, platforms and interpreter runs — a worker process
        and its supervisor agree on every event without coordination.
        """
        digest = hashlib.sha256(
            f"{self.seed}|{site}|{token!r}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def rate(self, site: str) -> float:
        try:
            return getattr(self, SITE_RATES[site])
        except KeyError:
            raise ValueError(f"unknown chaos site {site!r}") from None

    def fires(self, site: str, token: object) -> bool:
        """Whether the event at ``(site, token)`` fires under this policy."""
        rate = self.rate(site)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self.draw(site, token) < rate

    @property
    def is_null(self) -> bool:
        """True when no site can ever fire."""
        return all(getattr(self, field) == 0.0 for field in SITE_RATES.values())

    # -- spec round-trip ---------------------------------------------------------

    def spec(self) -> str:
        """Compact ``key=value,...`` rendering (non-default fields only)."""
        parts = []
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                parts.append(f"{field.name}={value:g}"
                             if isinstance(value, float)
                             else f"{field.name}={value}")
        return ",".join(parts) or "seed=0"

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse a ``key=value,...`` spec string (inverse of :meth:`spec`)."""
        known = {field.name: field.type for field in dataclasses.fields(cls)}
        kwargs: dict[str, float | int] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, raw = part.partition("=")
            name = name.strip()
            if not sep or name not in known:
                raise ValueError(
                    f"bad chaos spec field {part!r}; known fields: "
                    + ", ".join(sorted(known))
                )
            try:
                kwargs[name] = int(raw) if name == "seed" else float(raw)
            except ValueError:
                raise ValueError(
                    f"bad chaos spec value {raw!r} for {name}"
                ) from None
        return cls(**kwargs)
