"""On-chip charge pump model (§II-C, Table III, after [29]).

ReRAM write voltages (3 V, or up to ~3.94 V with UDRVR variants) exceed
the 1.8 V supply, so every chip hosts a switched-capacitor charge pump.
The pump constrains the memory system three ways:

* a **current budget** — 23 mA at 3 V for RESETs / 25 mA for SETs,
  enough for 256 concurrent bit operations (one worst-case 64B line
  write per phase with Flip-N-Write).  Schemes that add operations
  (D-BL's dummy resets) can exceed the budget and must serialise;
* a **charging latency/energy** — 28 ns and 17.8 nJ before a RESET
  phase can fire (21 ns / 13.1 nJ to discharge);
* **area and leakage** — 19.3 mm² (11% of a 4 GB chip) and 62.2 mW for
  the single-stage baseline; UDRVR's extra stage and VRAs grow it by a
  third (§IV-D).

The model is deliberately behavioural: the quantities above are the
interface the memory controller and the energy model consume, and they
are calibrated to the published silicon numbers rather than derived from
stage capacitances.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PumpParams, SystemConfig
from ..techniques.base import ChipOverheads

__all__ = ["PumpBudget", "ChargePumpModel"]


@dataclass(frozen=True)
class PumpBudget:
    """How many concurrent bit operations one phase can drive."""

    max_concurrent_resets: int
    max_concurrent_sets: int

    def reset_phases_needed(self, resets: int) -> int:
        """Phases required to retire ``resets`` concurrent RESETs."""
        if resets <= 0:
            return 0
        return -(-resets // self.max_concurrent_resets)

    def set_phases_needed(self, sets: int) -> int:
        if sets <= 0:
            return 0
        return -(-sets // self.max_concurrent_sets)


class ChargePumpModel:
    """Charge pump behaviour under a mitigation scheme's overheads."""

    def __init__(
        self,
        config: SystemConfig,
        overheads: ChipOverheads | None = None,
        output_voltage: float | None = None,
    ) -> None:
        self.params: PumpParams = config.pump
        self.overheads = overheads or ChipOverheads()
        self._v_out = output_voltage

    # -- electrical ------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        """Pump output voltage (V); the regulator's maximum level."""
        if self._v_out is not None:
            return self._v_out
        return self.params.v_out

    @property
    def current_budget_reset(self) -> float:
        """Total RESET current (A) the pump can source per phase."""
        return self.params.i_reset_budget * self.overheads.write_current_factor

    @property
    def current_budget_set(self) -> float:
        return self.params.i_set_budget * self.overheads.write_current_factor

    def budget(self, i_reset_bit: float, i_set_bit: float) -> PumpBudget:
        """Concurrent-operation budget for given per-bit currents."""
        if i_reset_bit <= 0 or i_set_bit <= 0:
            raise ValueError("per-bit currents must be positive")
        return PumpBudget(
            max_concurrent_resets=max(
                1, int(self.current_budget_reset / i_reset_bit)
            ),
            max_concurrent_sets=max(1, int(self.current_budget_set / i_set_bit)),
        )

    # -- timing and energy -------------------------------------------------------

    @property
    def charge_latency(self) -> float:
        """Time (s) to charge the pump before a write phase."""
        return self.params.t_charge * self.overheads.pump_charge_latency_factor

    @property
    def discharge_latency(self) -> float:
        return self.params.t_discharge

    @property
    def charge_energy(self) -> float:
        """Energy (J) of one pump charge cycle."""
        return self.params.e_charge * self.overheads.pump_charge_energy_factor

    @property
    def discharge_energy(self) -> float:
        return self.params.e_discharge

    def write_energy(self, bit_energy: float) -> float:
        """Wall-plug energy for ``bit_energy`` joules delivered at Vout.

        The pump's conversion efficiency (33%) multiplies everything the
        array draws during write phases.
        """
        if bit_energy < 0:
            raise ValueError(f"bit energy must be >= 0, got {bit_energy}")
        return bit_energy / self.params.efficiency

    # -- cost -----------------------------------------------------------------

    @property
    def area_mm2(self) -> float:
        return self.params.area_mm2 * self.overheads.pump_area_factor

    @property
    def leakage_w(self) -> float:
        return self.params.leakage_w * self.overheads.pump_leakage_factor
