"""Charge pump substrate: output-voltage boosting, current budgets,
charging latency/energy, and UDRVR's variable resistor arrays."""

from .charge_pump import ChargePumpModel, PumpBudget
from .vra import VRA_AREA_M2, VRA_ENERGY_J, VRA_LATENCY_S, VariableResistorArray

__all__ = [
    "ChargePumpModel",
    "PumpBudget",
    "VariableResistorArray",
    "VRA_AREA_M2",
    "VRA_ENERGY_J",
    "VRA_LATENCY_S",
]
