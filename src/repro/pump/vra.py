"""Variable resistor array (VRA) — UDRVR's level generator (Fig. 12b).

The UDRVR charge pump carries eight VRAs, one per bank.  Each VRA turns
the pump output into eight Vrst levels: a programmable resistor selected
by ``R[0:7]`` sets the level ``Vout0`` of the right-most column
multiplexer, and a chain of seven fixed resistors derives the remaining
seven (lower) levels for the other multiplexers.

Synthesised at 45 nm the decoders and VRAs occupy 66.2 um² (about the
area of 1 KB of ReRAM cells) and generating the eight levels takes
2.7 ns and 1.82 pJ per VRA (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..units import ns, pJ, um2

__all__ = ["VariableResistorArray", "VRA_AREA_M2", "VRA_LATENCY_S", "VRA_ENERGY_J"]

VRA_AREA_M2 = um2(66.2)
"""Total synthesised area of UDRVR's decoders and VRAs (§IV-D)."""

VRA_LATENCY_S = ns(2.7)
"""Time for one VRA to produce its eight Vrst levels."""

VRA_ENERGY_J = pJ(1.82)
"""Energy of one level-generation cycle."""


@dataclass(frozen=True)
class VariableResistorArray:
    """Maps a pump output voltage to per-column-multiplexer levels.

    ``levels`` are the target Vrst values, highest first matching
    ``Vout0`` of Fig. 12b (the right-most multiplexer).  The resistor
    chain can only *divide* the pump output, so every level must lie at
    or below it.
    """

    pump_voltage: float
    levels: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("a VRA must produce at least one level")
        if any(v <= 0 for v in self.levels):
            raise ValueError("levels must be positive")
        if max(self.levels) > self.pump_voltage + 1e-9:
            raise ValueError(
                f"level {max(self.levels):.3f} V exceeds pump output "
                f"{self.pump_voltage:.3f} V"
            )

    @classmethod
    def for_levels(cls, levels: "tuple[float, ...] | np.ndarray") -> "VariableResistorArray":
        """Build a VRA whose pump voltage is the highest needed level."""
        values = tuple(float(v) for v in levels)
        return cls(pump_voltage=max(values), levels=values)

    @property
    def resistor_ratios(self) -> tuple[float, ...]:
        """Divider ratios (level / pump output) realised by the chain."""
        return tuple(v / self.pump_voltage for v in self.levels)

    def level_for_mux(self, mux: int) -> float:
        """Vrst level of column multiplexer ``mux`` (0 = right-most)."""
        if not 0 <= mux < len(self.levels):
            raise ValueError(
                f"mux index {mux} outside 0..{len(self.levels) - 1}"
            )
        return self.levels[mux]
