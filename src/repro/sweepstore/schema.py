"""Fixed columnar schema for design-space sweep results.

One sweep **row** is one experiment cell: the value of one measured
quantity for one (config-hash, experiment, technique, solver,
fault-set, seed, cell) identity.  The schema is deliberately fixed and
typed — every backend (parquet or the npz fallback) serialises exactly
these columns in exactly this order, which is what makes cross-backend
query results byte-comparable.

Wide metrics (latency, endurance, fail fraction...) get their own
columns because the dominant producer — the fault-sweep experiment —
emits all of them per cell; anything else lands in the generic
``value`` column with the metric name folded into ``cell``.

:class:`Table` is the in-memory exchange format: a dict of NumPy
columns (``object`` dtype holding ``str`` for string columns, so
values survive any backend round-trip unchanged).  It knows how to
canonicalise itself — last-writer-wins dedup over the identity key
followed by a total-order sort — so a combined table's byte
fingerprint is a pure function of its logical content, independent of
ingest order or storage backend.
"""

from __future__ import annotations

import hashlib
import math
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "COLUMNS",
    "IDENTITY",
    "STRING",
    "INT64",
    "FLOAT64",
    "Table",
    "concat_tables",
    "join_tables",
]

STRING = "string"
INT64 = "int64"
FLOAT64 = "float64"

#: (name, kind) in serialisation order.  Append-only: adding a column
#: is a schema-version bump in the shard envelope, never a reorder.
COLUMNS: tuple[tuple[str, str], ...] = (
    ("config_hash", STRING),
    ("experiment", STRING),
    ("technique", STRING),
    ("solver", STRING),
    ("fault_set", STRING),
    ("seed", INT64),
    ("cell", STRING),
    ("fault_rate", FLOAT64),
    ("array_size", INT64),
    ("latency_us", FLOAT64),
    ("min_endurance", FLOAT64),
    ("fail_fraction", FLOAT64),
    ("stuck_fraction", FLOAT64),
    ("value", FLOAT64),
    ("wall_s", FLOAT64),
)

#: Cell identity: the dedup key for incremental combines.  Re-running
#: a sweep produces rows with equal identity, and the combiner keeps
#: exactly one (the last written).
IDENTITY: tuple[str, ...] = (
    "config_hash",
    "experiment",
    "technique",
    "solver",
    "fault_set",
    "seed",
    "cell",
)

_KINDS: dict[str, str] = dict(COLUMNS)

#: Fill-in for a row that does not provide a column.
_DEFAULTS = {STRING: "", INT64: -1, FLOAT64: float("nan")}


def _coerce_column(name: str, kind: str, values: Sequence) -> np.ndarray:
    if kind == STRING:
        out = np.empty(len(values), dtype=object)
        for i, value in enumerate(values):
            out[i] = str(value)
        return out
    if kind == INT64:
        return np.asarray([int(v) for v in values], dtype=np.int64)
    return np.asarray([float(v) for v in values], dtype=np.float64)


class Table:
    """A full-schema columnar batch of sweep rows.

    Always carries every schema column; projection produces plain
    ``{name: array}`` dicts (see :meth:`select`) rather than partial
    tables, so a ``Table`` in hand is always safe to store or combine.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        missing = [name for name, _ in COLUMNS if name not in columns]
        if missing:
            raise ValueError(f"table is missing schema columns {missing}")
        lengths = {len(columns[name]) for name, _ in COLUMNS}
        if len(lengths) > 1:
            raise ValueError(f"ragged table: column lengths {sorted(lengths)}")
        self.columns = {name: columns[name] for name, _ in COLUMNS}

    # -- construction ------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Table":
        columns = {}
        for name, kind in COLUMNS:
            if kind == STRING:
                columns[name] = np.empty(0, dtype=object)
            elif kind == INT64:
                columns[name] = np.empty(0, dtype=np.int64)
            else:
                columns[name] = np.empty(0, dtype=np.float64)
        return cls(columns)

    @classmethod
    def from_rows(cls, rows: Iterable[dict]) -> "Table":
        """Build a table from row dicts; absent columns take defaults.

        Unknown keys raise — a typo'd column silently dropped would be
        a data-loss bug invisible until query time.
        """
        rows = list(rows)
        for row in rows:
            unknown = [key for key in row if key not in _KINDS]
            if unknown:
                raise ValueError(f"unknown sweep columns {unknown}")
        columns = {}
        for name, kind in COLUMNS:
            default = _DEFAULTS[kind]
            columns[name] = _coerce_column(
                name, kind, [row.get(name, default) for row in rows]
            )
        return cls(columns)

    # -- basics ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.columns[COLUMNS[0][0]])

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def take(self, indices: np.ndarray) -> "Table":
        return Table(
            {name: array[indices] for name, array in self.columns.items()}
        )

    def select(self, names: Sequence[str]) -> dict[str, np.ndarray]:
        """Column projection (plain dict — intentionally not a Table)."""
        unknown = [name for name in names if name not in _KINDS]
        if unknown:
            raise ValueError(f"unknown sweep columns {unknown}")
        return {name: self.columns[name] for name in names}

    def to_rows(self) -> list[dict]:
        names = [name for name, _ in COLUMNS]
        arrays = [self.columns[name] for name in names]
        return [
            dict(zip(names, values)) for values in zip(*arrays)
        ] if self.num_rows else []

    def filter(self, mask: np.ndarray) -> "Table":
        return self.take(np.flatnonzero(mask))

    # -- canonicalisation --------------------------------------------------------

    def _sort_codes(self, name: str) -> np.ndarray:
        """A column as lexsort-able integer codes (strings get ranks)."""
        array = self.columns[name]
        if _KINDS[name] == STRING:
            # np.unique returns sorted uniques; the inverse indices are
            # therefore rank codes preserving lexicographic order.
            _, codes = np.unique(np.asarray(array, dtype=str), return_inverse=True)
            return codes
        return array

    def canonical(self) -> "Table":
        """Deduplicate (identity key, last row wins) and totally order.

        The result is a pure function of logical content: any
        permutation of the same rows canonicalises to the same table,
        which is what makes combine idempotent and backend fingerprints
        comparable.
        """
        if not self.num_rows:
            return self
        last: dict[tuple, int] = {}
        for i, key in enumerate(
            zip(*(self.columns[name] for name in IDENTITY))
        ):
            last[key] = i
        kept = np.fromiter(last.values(), dtype=np.int64, count=len(last))
        kept.sort()  # stable pre-order before the canonical sort
        table = self.take(kept) if len(kept) < self.num_rows else self
        # lexsort treats its *last* key as primary: feed columns in
        # reverse schema order so config_hash is the primary key.
        order = np.lexsort(
            tuple(table._sort_codes(name) for name, _ in reversed(COLUMNS))
        )
        return table.take(order)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical byte serialisation of this table.

        Equal fingerprints mean byte-identical query results whatever
        backend the rows travelled through: strings are hashed as
        UTF-8, ints and floats as little-endian fixed-width bytes (a
        float64 survives both parquet and npz round-trips bit-exactly).
        """
        table = self.canonical()
        digest = hashlib.sha256()
        digest.update(f"sweeptable:v1:rows={table.num_rows}".encode())
        for name, kind in COLUMNS:
            digest.update(f"\x00col:{name}:{kind}\x00".encode())
            array = table.columns[name]
            if kind == STRING:
                for value in array:
                    digest.update(value.encode("utf-8", "surrogatepass"))
                    digest.update(b"\x1f")
            elif kind == INT64:
                digest.update(np.ascontiguousarray(array, dtype="<i8").tobytes())
            else:
                digest.update(np.ascontiguousarray(array, dtype="<f8").tobytes())
        return digest.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(rows={self.num_rows})"


def concat_tables(tables: Sequence[Table]) -> Table:
    tables = [table for table in tables if table.num_rows]
    if not tables:
        return Table.empty()
    if len(tables) == 1:
        return tables[0]
    return Table(
        {
            name: np.concatenate([table.columns[name] for table in tables])
            for name, _ in COLUMNS
        }
    )


# -- predicate filters -----------------------------------------------------------

_OPS: dict[str, Callable[[np.ndarray, object], np.ndarray]] = {
    "==": lambda col, v: col == v,
    "!=": lambda col, v: col != v,
    "<=": lambda col, v: col <= v,
    ">=": lambda col, v: col >= v,
    "<": lambda col, v: col < v,
    ">": lambda col, v: col > v,
    "in": lambda col, v: np.isin(col, list(v)),
}


def _typed(name: str, value):
    kind = _KINDS[name]
    if kind == STRING:
        return str(value)
    if kind == INT64:
        return int(value)
    return float(value)


def apply_filters(table: Table, where: "Sequence[tuple] | None") -> Table:
    """Filter by ``(column, op, value)`` predicates (AND-combined).

    Ops: ``== != < <= > >= in``.  Values are coerced to the column's
    kind so CLI-sourced strings compare correctly against numerics.
    """
    if not where:
        return table
    mask = np.ones(table.num_rows, dtype=bool)
    for column, op, value in where:
        if column not in _KINDS:
            raise ValueError(f"unknown sweep column {column!r}")
        if op not in _OPS:
            raise ValueError(f"unknown filter op {op!r} (have {sorted(_OPS)})")
        if op == "in":
            value = [_typed(column, item) for item in value]
        else:
            value = _typed(column, value)
        array = table.columns[column]
        if _KINDS[column] == STRING:
            array = np.asarray(array, dtype=str)
        mask &= np.asarray(_OPS[op](array, value), dtype=bool)
    return table.filter(mask)


def parse_predicate(text: str) -> tuple[str, str, object]:
    """Parse a CLI predicate like ``fault_rate<=0.001`` or ``solver==batched``.

    ``=`` is accepted as a spelling of ``==``.
    """
    for op in ("==", "!=", "<=", ">=", "<", ">", "="):
        if op in text:
            column, _, value = text.partition(op)
            column, value = column.strip(), value.strip()
            if not column or not value:
                break
            return column, "==" if op == "=" else op, value
    raise ValueError(
        f"cannot parse predicate {text!r} (expected COLUMN<OP>VALUE "
        "with OP one of ==, !=, <, <=, >, >=)"
    )


# -- joins -----------------------------------------------------------------------


def join_tables(
    left: Table,
    right: Table,
    on: Sequence[str],
    select_left: "Sequence[str] | None" = None,
    select_right: "Sequence[str] | None" = None,
    suffixes: tuple[str, str] = ("_l", "_r"),
) -> dict[str, list]:
    """Inner hash join of two tables on equal values of ``on`` columns.

    Returns plain ``{column: list}`` output: the join keys once, then
    the selected non-key columns of each side with ``suffixes`` applied
    on name collisions.  Row order is deterministic: left row order,
    then right row order within a key group.
    """
    for name in on:
        if name not in _KINDS:
            raise ValueError(f"unknown join column {name!r}")
    select_left = [n for n in (select_left or [n for n, _ in COLUMNS]) if n not in on]
    select_right = [n for n in (select_right or [n for n, _ in COLUMNS]) if n not in on]

    def out_name(name: str, side: int) -> str:
        other = select_right if side == 0 else select_left
        return name + suffixes[side] if name in other else name

    groups: dict[tuple, list[int]] = {}
    right_keys = (
        list(zip(*(right.columns[name] for name in on))) if right.num_rows else []
    )
    for i, key in enumerate(right_keys):
        groups.setdefault(key, []).append(i)

    out: dict[str, list] = {name: [] for name in on}
    for name in select_left:
        out[out_name(name, 0)] = []
    for name in select_right:
        out[out_name(name, 1)] = []
    left_keys = list(zip(*(left.columns[name] for name in on))) if left.num_rows else []
    for i, key in enumerate(left_keys):
        for j in groups.get(key, ()):
            for name, value in zip(on, key):
                out[name].append(value)
            for name in select_left:
                out[out_name(name, 0)].append(left.columns[name][i])
            for name in select_right:
                out[out_name(name, 1)].append(right.columns[name][j])
    return out


def finite(values: Iterable[float]) -> list[float]:
    """The finite entries of ``values`` (drops the NaN column fill)."""
    return [v for v in values if not math.isnan(v) and not math.isinf(v)]
