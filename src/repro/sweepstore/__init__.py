"""Columnar sweep store: design-space ETL at million-point scale.

Each (config-hash, experiment, technique, solver, fault-set, seed,
cell) identity is one typed row.  See :mod:`repro.sweepstore.schema`
for the column schema, :mod:`repro.sweepstore.store` for the shard /
combine / query lifecycle, :mod:`repro.sweepstore.ingest` for row
extraction from experiment artifacts, and ``docs/sweepstore.md`` for
the operational story.
"""

from .backend import available_backends, parquet_available
from .ingest import SweepSpill, rows_from_result
from .schema import (
    COLUMNS,
    IDENTITY,
    Table,
    apply_filters,
    concat_tables,
    join_tables,
    parse_predicate,
)
from .store import CombineReport, CorruptShard, SweepStore

__all__ = [
    "COLUMNS",
    "IDENTITY",
    "CombineReport",
    "CorruptShard",
    "SweepSpill",
    "SweepStore",
    "Table",
    "apply_filters",
    "available_backends",
    "concat_tables",
    "join_tables",
    "parquet_available",
    "parse_predicate",
    "rows_from_result",
]
