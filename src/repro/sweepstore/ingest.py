"""Row extraction: experiment artifacts -> typed sweep rows.

Two extraction modes:

* **Wide rows** for the fault-sweep payload family (``margins`` keyed
  ``"<scheme> @ <rate>"`` with per-cell metric dicts): one row per
  (scheme, fault-rate) cell with the latency/endurance/fail-fraction
  metric columns filled — the shape the design-space queries join on.
* **Instance rows** for Monte Carlo payloads (``mc_instances`` keyed
  ``"<scheme> @ <rate> # <instance>"``): one row per (config, seed,
  instance) with the same wide metric columns, the instance id carried
  in ``cell`` — so ``repro sweep query`` can re-aggregate percentile
  bands across runs and configurations.
* **Long rows** for everything else: numeric payload leaves flattened
  into (``cell`` = dotted path, ``value`` = float) rows, capped so a
  payload carrying full voltage matrices cannot explode a shard.

Both accept either a live
:class:`~repro.engine.artifact.ExperimentResult` or its ``to_plain()``
JSON document, so the CLI can ingest ``--json`` files written by batch
runs and the service can spill results it just computed through one
code path.

:class:`SweepSpill` is the serve-plane hook: a small thread-safe row
buffer in front of :meth:`SweepStore.append`, flushing a shard every
``flush_rows`` rows (and on close/drain), so a long-lived service
emits a bounded number of well-filled shards instead of one per
request.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from .store import SweepStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.artifact import ExperimentResult

__all__ = ["SweepSpill", "rows_from_result"]

#: Fault-sweep metric keys that get dedicated wide columns.
_WIDE_METRICS = (
    "latency_us",
    "min_endurance",
    "fail_fraction",
    "stuck_fraction",
)

#: Generic-extraction bound: payload cells beyond this are dropped
#: (callers learn via the returned row count; the cap keeps a payload
#: embedding a full array map from producing megarow shards).
MAX_GENERIC_CELLS = 10_000


def _as_document(result: "ExperimentResult | dict") -> dict:
    if isinstance(result, dict):
        meta = result.get("meta", {})
        return {
            "experiment": result.get("experiment", meta.get("experiment", "")),
            "meta": meta,
            "payload": result.get("payload", {}),
        }
    return {
        "experiment": result.name,
        "meta": result.meta(),
        "payload": result.payload,
    }


def _float(value: Any) -> "float | None":
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    try:
        import numpy as np

        if isinstance(value, np.generic):
            return float(value)
    except Exception:  # noqa: BLE001 - numpy always present in practice
        pass
    return None


def rows_from_result(
    result: "ExperimentResult | dict",
    solver: "str | None" = None,
    fault_set: "str | None" = None,
    extra: "dict | None" = None,
) -> list[dict]:
    """Sweep rows for one experiment result (or its JSON document).

    ``solver``/``fault_set`` override what the document's metadata
    carries (the service passes the plan's resolved values; a CLI
    ingest of an old JSON file may need to supply them explicitly).
    ``extra`` merges fixed column values into every row — e.g.
    ``{"array_size": 512}`` for a sweep whose config is known out of
    band.
    """
    document = _as_document(result)
    meta = document["meta"]
    payload = document["payload"]
    base = {
        "config_hash": str(meta.get("config_hash", "")),
        "experiment": str(document["experiment"]),
        "solver": str(
            solver
            if solver is not None
            else meta.get("solver", "reference") or "reference"
        ),
        "fault_set": str(
            fault_set
            if fault_set is not None
            else meta.get("fault_set", "none") or "none"
        ),
        "seed": int(meta.get("seed", 0)),
        "wall_s": float(meta.get("wall_s", float("nan"))),
    }
    if extra:
        base.update(extra)
    if isinstance(payload, dict) and isinstance(payload.get("margins"), dict):
        rows = _wide_rows(base, payload)
        if rows:
            return rows
    if isinstance(payload, dict) and isinstance(
        payload.get("mc_instances"), dict
    ):
        rows = _mc_rows(base, payload)
        if rows:
            return rows
    return _generic_rows(base, payload)


def _wide_rows(base: dict, payload: dict) -> list[dict]:
    """One row per fault-sweep (scheme, rate) margin cell."""
    rows: list[dict] = []
    for key, metrics in payload["margins"].items():
        if not isinstance(metrics, dict):
            continue
        scheme, sep, rate_text = str(key).partition(" @ ")
        row = dict(base)
        row["technique"] = scheme if sep else str(key)
        if sep:
            try:
                rate = float(rate_text)
            except ValueError:
                rate = float("nan")
            row["fault_rate"] = rate
            row["cell"] = f"{scheme}@{rate_text}"
        else:
            row["cell"] = str(key)
        filled = False
        for metric in _WIDE_METRICS:
            value = _float(metrics.get(metric))
            if value is not None:
                row[metric] = value
                filled = True
        if filled:
            rows.append(row)
    return rows


def _mc_rows(base: dict, payload: dict) -> list[dict]:
    """One row per Monte Carlo (scheme, rate, instance) margin cell.

    Keys follow ``"<scheme> @ <rate> # <instance>"``; the instance id
    lands in ``cell`` (``"<scheme>@<rate>#i<instance>"``), keeping the
    (config_hash, experiment, technique, solver, fault_set, seed, cell)
    identity unique per instance so dedup folds re-ingests, not
    instances.
    """
    rows: list[dict] = []
    for key, metrics in payload["mc_instances"].items():
        if not isinstance(metrics, dict):
            continue
        head, sep, instance_text = str(key).partition(" # ")
        if not sep:
            continue
        scheme, at, rate_text = head.partition(" @ ")
        if not at:
            continue
        try:
            rate = float(rate_text)
        except ValueError:
            rate = float("nan")
        row = dict(base)
        row["technique"] = scheme
        row["fault_rate"] = rate
        row["cell"] = f"{scheme}@{rate_text}#i{instance_text.strip()}"
        filled = False
        for metric in _WIDE_METRICS:
            value = _float(metrics.get(metric))
            if value is not None:
                row[metric] = value
                filled = True
        if filled:
            rows.append(row)
    return rows


def _generic_rows(base: dict, payload: Any) -> list[dict]:
    """Flatten numeric payload leaves into (cell, value) long rows."""
    rows: list[dict] = []

    def visit(path: str, node: Any) -> None:
        if len(rows) >= MAX_GENERIC_CELLS:
            return
        value = _float(node)
        if value is not None:
            row = dict(base)
            row["cell"] = path or "value"
            row["value"] = value
            rows.append(row)
            return
        if isinstance(node, dict):
            for key in node:
                visit(f"{path}.{key}" if path else str(key), node[key])
        elif isinstance(node, (list, tuple)):
            for i, item in enumerate(node):
                visit(f"{path}[{i}]", item)

    visit("", payload)
    return rows


class SweepSpill:
    """Buffered row appender for the serve plane (``sweep.append`` hook)."""

    def __init__(
        self,
        store: "SweepStore | str",
        backend: str = "auto",
        flush_rows: int = 256,
    ) -> None:
        if flush_rows < 1:
            raise ValueError(f"flush_rows must be >= 1, got {flush_rows}")
        self.store = (
            store
            if isinstance(store, SweepStore)
            else SweepStore(store, backend=backend)
        )
        self.flush_rows = flush_rows
        self._rows: list[dict] = []
        self._lock = threading.Lock()

    def add(
        self,
        result: "ExperimentResult | dict",
        solver: "str | None" = None,
        fault_set: "str | None" = None,
    ) -> int:
        """Extract and buffer one result's rows; returns the row count."""
        rows = rows_from_result(result, solver=solver, fault_set=fault_set)
        flush: "list[dict] | None" = None
        with self._lock:
            self._rows.extend(rows)
            if len(self._rows) >= self.flush_rows:
                flush, self._rows = self._rows, []
        if flush:
            self.store.append(flush)
        return len(rows)

    def flush(self) -> int:
        """Write buffered rows out as one shard; returns rows written."""
        with self._lock:
            rows, self._rows = self._rows, []
        if rows:
            self.store.append(rows)
        return len(rows)

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._rows)
