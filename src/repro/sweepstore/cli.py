"""``python -m repro sweep`` — front door to the columnar sweep store.

Subcommands::

    repro sweep ingest  STORE RESULT.json [...]   # result docs -> one shard
    repro sweep combine STORE                     # fold shards, dedup, commit
    repro sweep query   STORE [--where ...] [--columns ...] [--json]
    repro sweep stats   STORE                     # shard/row/generation counts

``ingest`` consumes the exact ``--json`` documents the batch CLI and
the service emit; ``query`` prints tab-separated rows (or JSON with
``--json``) from the canonical view — the committed generation plus
any not-yet-folded shards.
"""

from __future__ import annotations

import argparse
import json
import sys

from .backend import available_backends
from .ingest import rows_from_result
from .schema import COLUMNS, parse_predicate
from .store import SweepStore

__all__ = ["sweep_main"]


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("store", help="sweep store directory")
    parser.add_argument(
        "--backend", default="auto",
        choices=("auto", *available_backends()),
        help="shard serialisation for writes (reads auto-detect; "
        "default: auto = parquet when pyarrow is installed, else npz)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser(
        "ingest", help="extract rows from result JSON documents into a shard"
    )
    _add_store_argument(ingest)
    ingest.add_argument(
        "results", nargs="+", metavar="RESULT",
        help="result JSON files ('-' reads one document from stdin)",
    )
    ingest.add_argument(
        "--solver", default=None,
        help="override the solver column (for documents predating it)",
    )
    ingest.add_argument(
        "--fault-set", default=None,
        help="override the fault_set column (for documents predating it)",
    )
    ingest.add_argument(
        "--set", dest="extra", action="append", default=[], metavar="COL=VAL",
        help="fix a column on every ingested row, e.g. --set array_size=512",
    )

    combine = commands.add_parser(
        "combine", help="fold shards into the canonical deduplicated table"
    )
    _add_store_argument(combine)
    combine.add_argument(
        "--grace", type=float, default=60.0, metavar="S",
        help="age before incomplete write debris counts as crash evidence",
    )

    query = commands.add_parser("query", help="filter/project canonical rows")
    _add_store_argument(query)
    query.add_argument(
        "--where", action="append", default=[], metavar="PRED",
        help="predicate like technique==DRVR+PR or fault_rate<=0.001 "
        "(repeatable; AND-combined)",
    )
    query.add_argument(
        "--columns", default=None, metavar="A,B,C",
        help="comma-separated column projection (default: all)",
    )
    query.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="print at most N rows",
    )
    query.add_argument(
        "--combined-only", action="store_true",
        help="ignore shards not yet folded by combine",
    )
    query.add_argument(
        "--json", action="store_true",
        help="emit one JSON object per row instead of a TSV table",
    )

    stats = commands.add_parser("stats", help="store health counters")
    _add_store_argument(stats)
    stats.add_argument("--json", action="store_true")
    return parser


def _parse_extra(pairs: list[str]) -> dict:
    known = {name for name, _ in COLUMNS}
    extra: dict = {}
    for pair in pairs:
        column, sep, value = pair.partition("=")
        if not sep or not column:
            raise SystemExit(f"--set expects COL=VAL, got {pair!r}")
        if column not in known:
            raise SystemExit(f"--set names unknown sweep column {column!r}")
        extra[column] = value
    return extra


def _load_document(path: str) -> dict:
    text = sys.stdin.read() if path == "-" else open(path).read()
    document = json.loads(text)
    if not isinstance(document, dict):
        raise SystemExit(f"{path}: expected a result JSON object")
    return document


def _cmd_ingest(args: argparse.Namespace) -> int:
    store = SweepStore(args.store, backend=args.backend)
    extra = _parse_extra(args.extra)
    rows: list[dict] = []
    for path in args.results:
        extracted = rows_from_result(
            _load_document(path),
            solver=args.solver,
            fault_set=args.fault_set,
            extra=extra,
        )
        if not extracted:
            print(f"{path}: no ingestable rows", file=sys.stderr)
        rows.extend(extracted)
    shard = store.append(rows)
    if shard is None:
        print("nothing to ingest")
        return 1
    print(f"ingested {len(rows)} rows into shard {shard}")
    return 0


def _cmd_combine(args: argparse.Namespace) -> int:
    store = SweepStore(args.store, backend=args.backend, grace_s=args.grace)
    report = store.combine()
    print(
        f"generation {report.generation}: {report.rows} rows "
        f"({report.folded_shards} shards / {report.folded_rows} rows folded"
        + (f", {len(report.quarantined)} artefacts quarantined"
           if report.quarantined else "")
        + ")"
    )
    return 0


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _cmd_query(args: argparse.Namespace) -> int:
    store = SweepStore(args.store, backend=args.backend)
    where = [parse_predicate(text) for text in args.where]
    columns = (
        [name.strip() for name in args.columns.split(",") if name.strip()]
        if args.columns
        else [name for name, _ in COLUMNS]
    )
    projection = store.query(
        where=where,
        columns=columns,
        combined_only=args.combined_only,
        limit=args.limit,
    )
    arrays = [projection[name] for name in columns]
    count = len(arrays[0]) if arrays else 0
    if args.json:
        for values in zip(*arrays):
            print(json.dumps(_plain_row(dict(zip(columns, values))), sort_keys=True))
    else:
        print("\t".join(columns))
        for values in zip(*arrays):
            print("\t".join(_format_cell(value) for value in values))
    print(f"{count} rows", file=sys.stderr)
    return 0


def _plain_row(row: dict) -> dict:
    plain = {}
    for name, value in row.items():
        if hasattr(value, "item"):
            value = value.item()
        if isinstance(value, float) and value != value:
            value = None  # NaN has no JSON spelling
        plain[name] = value
    return plain


def _cmd_stats(args: argparse.Namespace) -> int:
    store = SweepStore(args.store, backend=args.backend)
    stats = store.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
    else:
        for key, value in stats.items():
            print(f"{key}: {value}")
    return 0


def sweep_main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "ingest": _cmd_ingest,
        "combine": _cmd_combine,
        "query": _cmd_query,
        "stats": _cmd_stats,
    }[args.command]
    try:
        return handler(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
