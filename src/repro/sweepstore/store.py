"""Append-only columnar sweep store with incremental combine.

Layout of one store directory::

    <root>/
      shards/
        shard-<pid>-<seq><ext>               one ingested row batch
        shard-<pid>-<seq>.manifest.json      its checksummed envelope
      combined/
        table-<gen><ext> (+ manifest)        the canonical deduped table
        CURRENT                              pointer to the live generation
      quarantine/                            evidence of corrupt/crashed writes

Write discipline (the same O_EXCL + ``os.replace`` rules as
``engine/cache.py``):

1. The shard *name* is reserved by creating its manifest path with
   ``O_CREAT | O_EXCL`` — two concurrent ingesters can never collide on
   a shard, whatever their pids/threads.
2. The data file is written to a dot-tmp sibling and published with
   ``os.replace`` (atomic on POSIX).
3. The real manifest — row count, SHA-256 of the published data bytes,
   backend, creation time — is written to a tmp and ``os.replace``\\ d
   over the reservation placeholder **last**.

Readers only trust shards whose manifest parses and whose data
checksum matches, so every crash window degrades to an *invisible*
shard: a reservation with no data, data with a placeholder manifest,
or a torn data file all fail validation and are quarantined by the
next :meth:`SweepStore.combine` (after a grace period, so an ingest
that is merely *in progress* is never mistaken for a crash).

:meth:`SweepStore.combine` folds valid shards into the canonical
table: concat (current generation first, then shards in created
order), last-writer-wins dedup on the identity key, canonical sort,
atomic publish of ``table-<gen+1>`` and the ``CURRENT`` pointer, then
deletion of the folded shards.  Every step is idempotent: a crash
anywhere re-runs cleanly, and re-ingesting the same sweep changes
nothing but the generation number.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time

import numpy as np
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .backend import backend_for, backend_for_data_file
from .schema import Table, apply_filters, concat_tables

__all__ = ["CombineReport", "CorruptShard", "SweepStore"]

SCHEMA_VERSION = 1
MANIFEST_SUFFIX = ".manifest.json"
_CURRENT = "CURRENT"

#: Distinguishes concurrent shard reservations within one process.
_SHARD_SEQ = itertools.count(1)


class CorruptShard(RuntimeError):
    """A shard or combined table failed manifest/checksum validation."""


@dataclass(frozen=True)
class _Shard:
    """One validated-manifest shard (data not yet checksum-verified)."""

    name: str
    created: float
    rows: int
    data_path: Path
    manifest_path: Path
    checksum: str
    backend: str


@dataclass
class CombineReport:
    """What one :meth:`SweepStore.combine` call did."""

    generation: int
    rows: int
    folded_shards: int
    folded_rows: int
    quarantined: list[str] = field(default_factory=list)

    def to_plain(self) -> dict:
        return {
            "generation": self.generation,
            "rows": self.rows,
            "folded_shards": self.folded_shards,
            "folded_rows": self.folded_rows,
            "quarantined": list(self.quarantined),
        }


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_json_atomic(path: Path, document: dict) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(document, sort_keys=True) + "\n")
    os.replace(tmp, path)


class SweepStore:
    """Columnar sweep-result store rooted at one directory.

    ``backend`` selects the shard serialisation for *writes* ("auto"
    prefers parquet when pyarrow is installed); reads always dispatch
    on each file's recorded backend, so mixed stores just work.
    ``grace_s`` is how old an invalid/incomplete artefact must be
    before :meth:`combine` treats it as crash debris rather than an
    ingest in progress.
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        backend: str = "auto",
        grace_s: float = 60.0,
    ) -> None:
        self.root = Path(root)
        self.shards_dir = self.root / "shards"
        self.combined_dir = self.root / "combined"
        self.quarantine_dir = self.root / "quarantine"
        self.backend = backend_for(backend)
        self.grace_s = grace_s
        # One-generation read cache: (table name, size, mtime_ns) -> the
        # loaded canonical Table.  Million-row stores answer repeated
        # queries/joins without re-reading and re-checksumming the
        # combined file; any replacement of the file (a new combine, or
        # corruption overwriting it) changes the stat key and misses.
        self._combined_cache: "tuple[tuple, Table] | None" = None

    # -- ingest ------------------------------------------------------------------

    def append(self, rows: "Sequence[dict] | Table") -> "str | None":
        """Write one immutable shard of rows; returns the shard name.

        Empty input writes nothing (``None``).  The shard becomes
        visible to readers atomically: its manifest is published last,
        and readers ignore everything without a valid manifest.
        """
        table = rows if isinstance(rows, Table) else Table.from_rows(rows)
        if not table.num_rows:
            return None
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        name, manifest_path = self._reserve_shard_name()
        data_path = self.shards_dir / f"{name}{self.backend.extension}"
        tmp = self.shards_dir / f".{data_path.name}.tmp-{os.getpid()}"
        try:
            self.backend.write(str(tmp), table)
            os.replace(tmp, data_path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        manifest = {
            "schema": SCHEMA_VERSION,
            "name": name,
            "data": data_path.name,
            "backend": self.backend.name,
            "rows": table.num_rows,
            "checksum": _sha256_file(data_path),
            "created": time.time(),
        }
        _write_json_atomic(manifest_path, manifest)
        return name

    def _reserve_shard_name(self) -> tuple[str, Path]:
        """Claim a unique shard name via O_EXCL on its manifest path."""
        pid = os.getpid()
        while True:
            name = f"shard-{pid}-{next(_SHARD_SEQ):06d}"
            manifest_path = self.shards_dir / f"{name}{MANIFEST_SUFFIX}"
            try:
                fd = os.open(
                    manifest_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue  # previous run of this pid; take the next seq
            os.close(fd)
            return name, manifest_path

    # -- quarantine --------------------------------------------------------------

    def _quarantine(self, path: Path) -> "str | None":
        """Move ``path`` into quarantine under a collision-free name."""
        if not path.exists():
            return None
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        stem, suffix = path.name, ""
        if "." in path.name:
            stem, _, rest = path.name.partition(".")
            suffix = f".{rest}"
        for seq in itertools.count(1):
            target = self.quarantine_dir / f"{stem}.{os.getpid()}.{seq}{suffix}"
            try:
                fd = os.open(target, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            try:
                os.replace(path, target)
            except FileNotFoundError:
                target.unlink(missing_ok=True)  # a racer moved it first
                return None
            return target.name

    # -- scanning ----------------------------------------------------------------

    def _scan_shards(self) -> tuple[list[_Shard], list[Path]]:
        """Valid-manifest shards plus the paths that failed validation."""
        shards: list[_Shard] = []
        invalid: list[Path] = []
        if not self.shards_dir.is_dir():
            return shards, invalid
        for manifest_path in sorted(self.shards_dir.glob(f"*{MANIFEST_SUFFIX}")):
            shard = self._parse_manifest(manifest_path)
            if shard is None:
                invalid.append(manifest_path)
            else:
                shards.append(shard)
        shards.sort(key=lambda shard: (shard.created, shard.name))
        return shards, invalid

    def _parse_manifest(self, manifest_path: Path) -> "_Shard | None":
        try:
            document = json.loads(manifest_path.read_text())
            name = document["name"]
            data = document["data"]
            shard = _Shard(
                name=str(name),
                created=float(document["created"]),
                rows=int(document["rows"]),
                data_path=manifest_path.parent / str(data),
                manifest_path=manifest_path,
                checksum=str(document["checksum"]),
                backend=str(document["backend"]),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if int(document.get("schema", -1)) != SCHEMA_VERSION:
            return None
        if not shard.data_path.is_file():
            return None
        return shard

    def _load_shard(self, shard: _Shard) -> Table:
        """Read and verify one shard; raises :class:`CorruptShard`."""
        if _sha256_file(shard.data_path) != shard.checksum:
            raise CorruptShard(
                f"checksum mismatch in sweep shard {shard.name}"
            )
        table = backend_for_data_file(shard.data_path.name).read(
            str(shard.data_path)
        )
        if table.num_rows != shard.rows:
            raise CorruptShard(
                f"row count mismatch in sweep shard {shard.name}: "
                f"manifest says {shard.rows}, data holds {table.num_rows}"
            )
        return table

    def _stale(self, path: Path) -> bool:
        """Old enough that an incomplete artefact means a crashed writer.

        Shares the grace-window rule with the engine's shared-memory
        segment janitor (:mod:`repro.cleanup`), so "crashed writer"
        means one thing across every spill/segment cleanup path.
        """
        from ..cleanup import is_stale

        return is_stale(path, grace_s=self.grace_s)

    # -- the canonical table -----------------------------------------------------

    def _current_pointer(self) -> "dict | None":
        try:
            document = json.loads((self.combined_dir / _CURRENT).read_text())
            int(document["generation"])
            str(document["table"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return document

    def _load_combined(self) -> tuple[int, Table, list[str]]:
        """The live canonical generation (0 and empty before any combine).

        A corrupt canonical table is quarantined and rebuilt from
        whatever shards remain — the quarantine evidence survives, but
        the store keeps serving rather than wedging every reader.
        """
        pointer = self._current_pointer()
        if pointer is None:
            return 0, Table.empty(), []
        generation = int(pointer["generation"])
        cache_key = self._combined_stat_key(str(pointer["table"]))
        if cache_key is not None and self._combined_cache is not None:
            cached_key, cached_table = self._combined_cache
            if cached_key == cache_key:
                return generation, cached_table, []
        manifest_path = self.combined_dir / f"{pointer['table']}{MANIFEST_SUFFIX}"
        shard = self._parse_manifest(manifest_path)
        quarantined: list[str] = []
        if shard is not None:
            try:
                table = self._load_shard(shard)
            except CorruptShard:
                pass
            else:
                if cache_key is not None:
                    self._combined_cache = (cache_key, table)
                return generation, table, quarantined
        self._combined_cache = None
        for path in (
            self.combined_dir / str(pointer["table"]),
            manifest_path,
        ):
            moved = self._quarantine(path)
            if moved:
                quarantined.append(moved)
        return generation, Table.empty(), quarantined

    def _combined_stat_key(self, table_name: str) -> "tuple | None":
        """Identity of the combined data file as it sits on disk now."""
        try:
            stat = (self.combined_dir / table_name).stat()
        except OSError:
            return None
        return (table_name, stat.st_size, stat.st_mtime_ns)

    def combine(self) -> CombineReport:
        """Fold pending shards into the next canonical generation.

        Idempotent: with nothing new to fold it is a no-op; re-running
        after any crash (including one mid-combine) converges to the
        same canonical table, because dedup keys on row identity.
        Also the store's janitor: definitively corrupt shards are
        quarantined immediately, and incomplete write debris older
        than ``grace_s`` is quarantined as crash evidence.
        """
        self.combined_dir.mkdir(parents=True, exist_ok=True)
        generation, current, quarantined = self._load_combined()
        shards, invalid = self._scan_shards()

        tables: list[Table] = [current]
        folded: list[_Shard] = []
        folded_rows = 0
        for shard in shards:
            try:
                table = self._load_shard(shard)
            except (CorruptShard, ValueError):
                # Checksum/backend failures are definitive — no grace.
                for path in (shard.data_path, shard.manifest_path):
                    moved = self._quarantine(path)
                    if moved:
                        quarantined.append(moved)
                continue
            tables.append(table)
            folded.append(shard)
            folded_rows += table.num_rows

        quarantined.extend(self._sweep_debris(shards))
        for manifest_path in invalid:
            if self._stale(manifest_path):
                moved = self._quarantine(manifest_path)
                if moved:
                    quarantined.append(moved)

        if not folded and self._current_pointer() is not None:
            return CombineReport(
                generation=generation,
                rows=current.num_rows,
                folded_shards=0,
                folded_rows=0,
                quarantined=quarantined,
            )

        merged = concat_tables(tables).canonical()
        new_generation = self._next_generation(generation)
        table_name = f"table-{new_generation:06d}{self.backend.extension}"
        data_path = self.combined_dir / table_name
        tmp = self.combined_dir / f".{table_name}.tmp-{os.getpid()}"
        try:
            self.backend.write(str(tmp), merged)
            os.replace(tmp, data_path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        _write_json_atomic(
            self.combined_dir / f"{table_name}{MANIFEST_SUFFIX}",
            {
                "schema": SCHEMA_VERSION,
                "name": f"table-{new_generation:06d}",
                "data": table_name,
                "backend": self.backend.name,
                "rows": merged.num_rows,
                "checksum": _sha256_file(data_path),
                "created": time.time(),
            },
        )
        # The pointer flip is the commit point: everything before it is
        # invisible, everything after it is cleanup.
        _write_json_atomic(
            self.combined_dir / _CURRENT,
            {"schema": SCHEMA_VERSION, "generation": new_generation,
             "table": table_name},
        )
        cache_key = self._combined_stat_key(table_name)
        if cache_key is not None:
            self._combined_cache = (cache_key, merged)
        for shard in folded:
            shard.data_path.unlink(missing_ok=True)
            shard.manifest_path.unlink(missing_ok=True)
        self._drop_stale_generations(new_generation)
        return CombineReport(
            generation=new_generation,
            rows=merged.num_rows,
            folded_shards=len(folded),
            folded_rows=folded_rows,
            quarantined=quarantined,
        )

    def _sweep_debris(self, shards: list[_Shard]) -> list[str]:
        """Quarantine stale unreferenced files in ``shards/`` (janitor)."""
        referenced = {shard.manifest_path.name for shard in shards}
        referenced.update(shard.data_path.name for shard in shards)
        moved: list[str] = []
        if not self.shards_dir.is_dir():
            return moved
        for path in sorted(self.shards_dir.iterdir()):
            if path.name in referenced or path.name.endswith(MANIFEST_SUFFIX):
                continue  # invalid manifests are handled by the caller
            if self._stale(path):
                name = self._quarantine(path)
                if name:
                    moved.append(name)
        return moved

    def _next_generation(self, current: int) -> int:
        """One past both CURRENT and any crashed-combine orphan tables."""
        highest = current
        for path in self.combined_dir.glob("table-*"):
            stem = path.name.split(".")[0]
            try:
                highest = max(highest, int(stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return highest + 1

    def _drop_stale_generations(self, live: int) -> None:
        live_stem = f"table-{live:06d}"
        for path in sorted(self.combined_dir.glob("table-*")):
            if not path.name.startswith(live_stem):
                path.unlink(missing_ok=True)

    # -- queries -----------------------------------------------------------------

    def table(self, combined_only: bool = False) -> Table:
        """The canonical view: combined generation + unfolded shards.

        Fresh shards are visible to queries without waiting for a
        combine; ``combined_only`` restricts to the last committed
        generation (what a concurrent combiner has published).
        """
        _, current, _ = self._load_combined()
        if combined_only:
            return current
        tables = [current]
        shards, _ = self._scan_shards()
        for shard in shards:
            try:
                tables.append(self._load_shard(shard))
            except (CorruptShard, ValueError):
                continue  # combine() will quarantine it
        if len(tables) == 1:
            return current  # combine() already published it canonical
        return concat_tables(tables).canonical()

    def query(
        self,
        where: "Sequence[tuple] | None" = None,
        columns: "Sequence[str] | None" = None,
        combined_only: bool = False,
        limit: "int | None" = None,
    ) -> "Table | dict":
        """Filtered (and optionally projected) canonical rows.

        ``where`` is a sequence of ``(column, op, value)`` predicates
        (see :func:`~repro.sweepstore.schema.apply_filters`).  With
        ``columns`` the result is a ``{name: array}`` projection;
        otherwise a full-schema :class:`Table`.
        """
        table = apply_filters(self.table(combined_only=combined_only), where)
        if limit is not None and table.num_rows > limit:
            table = table.take(np.arange(limit))
        if columns is not None:
            return table.select(columns)
        return table

    def stats(self) -> dict:
        """Shard/row/generation counts (cheap: manifests only)."""
        shards, invalid = self._scan_shards()
        pointer = self._current_pointer()
        combined_rows = 0
        if pointer is not None:
            manifest = self._parse_manifest(
                self.combined_dir / f"{pointer['table']}{MANIFEST_SUFFIX}"
            )
            combined_rows = manifest.rows if manifest is not None else 0
        quarantined = (
            len(list(self.quarantine_dir.iterdir()))
            if self.quarantine_dir.is_dir()
            else 0
        )
        return {
            "root": str(self.root),
            "backend": self.backend.name,
            "generation": int(pointer["generation"]) if pointer else 0,
            "combined_rows": combined_rows,
            "pending_shards": len(shards),
            "pending_rows": sum(shard.rows for shard in shards),
            "invalid_manifests": len(invalid),
            "quarantined": quarantined,
        }
