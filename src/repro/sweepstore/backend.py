"""Serialisation backends for sweep tables: parquet, with an npz fallback.

The store is backend-agnostic: a shard's manifest records which
backend wrote its data file, so a store directory may legally mix
parquet and npz shards (e.g. ingested on machines with and without
pyarrow) and every reader dispatches per file.  Both backends
round-trip the full :data:`~repro.sweepstore.schema.COLUMNS` schema
losslessly — float64 bits, int64 values and UTF-8 strings come back
exactly — so canonical fingerprints never depend on which backend a
row travelled through.

pyarrow is an *optional* dependency: nothing in this module imports it
at module scope, and :func:`parquet_available` is the single gate every
caller (store, CLI, bench, tests) consults.
"""

from __future__ import annotations

import numpy as np

from .schema import COLUMNS, INT64, STRING, Table

__all__ = [
    "NpzBackend",
    "ParquetBackend",
    "available_backends",
    "backend_for",
    "backend_for_data_file",
    "parquet_available",
]


def parquet_available() -> bool:
    """True when pyarrow (and its parquet module) imports cleanly."""
    try:
        import pyarrow.parquet  # noqa: F401
    except Exception:  # noqa: BLE001 - any import failure means "no"
        return False
    return True


class NpzBackend:
    """Always-available fallback: one compressed ``.npz`` per shard.

    Strings are stored as NumPy unicode (``U``) arrays — fixed-width
    in the file but decoded back to Python ``str`` in ``object``
    columns, so in-memory tables are identical to parquet-read ones.
    """

    name = "npz"
    extension = ".npz"

    @staticmethod
    def available() -> bool:
        return True

    def write(self, path: str, table: Table) -> None:
        arrays = {}
        for name, kind in COLUMNS:
            column = table.columns[name]
            if kind == STRING:
                arrays[name] = np.asarray(
                    [str(v) for v in column], dtype=str
                ) if len(column) else np.empty(0, dtype="U1")
            else:
                arrays[name] = column
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)

    def read(self, path: str) -> Table:
        columns = {}
        with np.load(path, allow_pickle=False) as data:
            for name, kind in COLUMNS:
                array = data[name]
                if kind == STRING:
                    out = np.empty(len(array), dtype=object)
                    for i, value in enumerate(array.tolist()):
                        out[i] = str(value)
                    columns[name] = out
                elif kind == INT64:
                    columns[name] = np.asarray(array, dtype=np.int64)
                else:
                    columns[name] = np.asarray(array, dtype=np.float64)
        return Table(columns)


class ParquetBackend:
    """Columnar parquet shards via pyarrow (preferred when installed)."""

    name = "parquet"
    extension = ".parquet"

    @staticmethod
    def available() -> bool:
        return parquet_available()

    def write(self, path: str, table: Table) -> None:
        import pyarrow as pa
        import pyarrow.parquet as pq

        arrays = {}
        for name, kind in COLUMNS:
            column = table.columns[name]
            if kind == STRING:
                arrays[name] = pa.array(
                    [str(v) for v in column], type=pa.string()
                )
            elif kind == INT64:
                arrays[name] = pa.array(
                    np.asarray(column, dtype=np.int64), type=pa.int64()
                )
            else:
                arrays[name] = pa.array(
                    np.asarray(column, dtype=np.float64), type=pa.float64()
                )
        pq.write_table(pa.table(arrays), path)

    def read(self, path: str) -> Table:
        import pyarrow.parquet as pq

        data = pq.read_table(path, columns=[name for name, _ in COLUMNS])
        columns = {}
        for name, kind in COLUMNS:
            values = data.column(name).to_pylist()
            if kind == STRING:
                out = np.empty(len(values), dtype=object)
                for i, value in enumerate(values):
                    out[i] = "" if value is None else str(value)
                columns[name] = out
            elif kind == INT64:
                columns[name] = np.asarray(values, dtype=np.int64)
            else:
                columns[name] = np.asarray(
                    [float("nan") if v is None else v for v in values],
                    dtype=np.float64,
                )
        return Table(columns)


_BACKENDS = {NpzBackend.name: NpzBackend, ParquetBackend.name: ParquetBackend}
_EXTENSIONS = {
    NpzBackend.extension: NpzBackend,
    ParquetBackend.extension: ParquetBackend,
}


def available_backends() -> tuple[str, ...]:
    return tuple(
        name for name, cls in _BACKENDS.items() if cls.available()
    )


def backend_for(name: str) -> "NpzBackend | ParquetBackend":
    """Resolve a backend by name; ``"auto"`` prefers parquet.

    Raises ``ValueError`` for an unknown name or an installed-but-
    unavailable request (``parquet`` without pyarrow), so misconfigured
    ingests fail at the front door rather than at the first write.
    """
    if name == "auto":
        return ParquetBackend() if parquet_available() else NpzBackend()
    cls = _BACKENDS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown sweep backend {name!r} "
            f"(choose from auto, {', '.join(_BACKENDS)})"
        )
    if not cls.available():
        raise ValueError(
            f"sweep backend {name!r} is not available (pyarrow not installed)"
        )
    return cls()


def backend_for_data_file(filename: str) -> "NpzBackend | ParquetBackend":
    """The backend that reads ``filename``, dispatched on its extension."""
    for extension, cls in _EXTENSIONS.items():
        if filename.endswith(extension):
            if not cls.available():
                raise ValueError(
                    f"cannot read {filename!r}: backend {cls.name!r} "
                    "is not available (pyarrow not installed)"
                )
            return cls()
    raise ValueError(f"unrecognised sweep data file {filename!r}")
