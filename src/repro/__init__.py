"""repro: a reproduction of "Mitigating Voltage Drop in Resistive
Memories by Dynamic RESET Voltage Regulation and Partition RESET"
(Zokaee & Jiang, HPCA 2020).

The package layers:

* :mod:`repro.circuit` — selectors, cells, wires and nodal IR-drop
  solvers for cross-point arrays;
* :mod:`repro.xpoint` — full-array effective-voltage / latency /
  endurance maps;
* :mod:`repro.techniques` — DRVR, PR, UDRVR and every prior scheme the
  paper compares against;
* :mod:`repro.pump`, :mod:`repro.mem`, :mod:`repro.cpu`,
  :mod:`repro.workloads` — the charge pump, NVDIMM memory system,
  CMP simulator and synthetic Table-IV workloads;
* :mod:`repro.analysis` — one driver per paper figure/table.

Quick start::

    from repro import default_config, get_ir_model
    from repro.techniques import make_udrvr_pr

    config = default_config()
    model = get_ir_model(config)
    print(model.v_eff(511, 511))            # worst-corner effective Vrst
    scheme = make_udrvr_pr(config)          # the paper's headline scheme
"""

from .config import (
    ArrayParams,
    CellParams,
    CpuParams,
    LifetimeParams,
    MemoryParams,
    PumpParams,
    SelectorParams,
    SystemConfig,
    config_hash,
    default_config,
)
from .xpoint import ArrayIRModel, get_ir_model

__version__ = "1.1.0"

from .engine import (  # noqa: E402  (engine needs config/__version__ above)
    ExperimentResult,
    RunContext,
    run_experiment,
)

__all__ = [
    "ArrayParams",
    "CellParams",
    "CpuParams",
    "LifetimeParams",
    "MemoryParams",
    "PumpParams",
    "SelectorParams",
    "SystemConfig",
    "config_hash",
    "default_config",
    "ArrayIRModel",
    "get_ir_model",
    "ExperimentResult",
    "RunContext",
    "run_experiment",
    "__version__",
]
