"""Trace record types for the trace-driven simulator.

A trace is a per-core stream of :class:`MemoryAccess` records at the
**L2-miss level**: each record is one request leaving the core's private
L2 (the level Table IV's RPKI/WPKI are counted at), annotated with the
number of instructions the core retired since its previous record.  The
in-package DRAM L3 cache model filters these further before anything
reaches the ReRAM main memory.

Traces round-trip through ``.npz`` files (:meth:`Trace.save` /
:meth:`Trace.load`), so externally captured streams can replace the
synthetic generators.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

__all__ = ["MemoryAccess", "Trace"]


@dataclass(frozen=True)
class MemoryAccess:
    """One L2 miss: ``gap_instructions`` retired since the previous one."""

    gap_instructions: int
    is_write: bool
    address: int  # byte address, line-aligned by the generator

    def __post_init__(self) -> None:
        if self.gap_instructions < 0:
            raise ValueError(
                f"instruction gap must be >= 0, got {self.gap_instructions}"
            )
        if self.address < 0:
            raise ValueError(f"address must be >= 0, got {self.address}")


class Trace:
    """A bounded, replayable sequence of accesses."""

    def __init__(self, accesses: Iterable[MemoryAccess]) -> None:
        self._accesses = list(accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self._accesses)

    def __len__(self) -> int:
        return len(self._accesses)

    @property
    def instructions(self) -> int:
        return sum(access.gap_instructions for access in self._accesses)

    @property
    def reads(self) -> int:
        return sum(1 for access in self._accesses if not access.is_write)

    @property
    def writes(self) -> int:
        return sum(1 for access in self._accesses if access.is_write)

    def rpki(self) -> float:
        """Read accesses per kilo-instruction."""
        instructions = self.instructions
        return 1000.0 * self.reads / instructions if instructions else 0.0

    def wpki(self) -> float:
        """Write accesses per kilo-instruction."""
        instructions = self.instructions
        return 1000.0 * self.writes / instructions if instructions else 0.0

    # -- persistence -----------------------------------------------------------

    def save(self, path: "str | pathlib.Path") -> None:
        """Write the trace to a compressed ``.npz`` file."""
        gaps = np.array([a.gap_instructions for a in self._accesses], dtype=np.int64)
        writes = np.array([a.is_write for a in self._accesses], dtype=bool)
        addresses = np.array([a.address for a in self._accesses], dtype=np.uint64)
        np.savez_compressed(
            path, gaps=gaps, writes=writes, addresses=addresses
        )

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "Trace":
        """Read a trace written by :meth:`save`."""
        with np.load(path) as data:
            required = {"gaps", "writes", "addresses"}
            if not required <= set(data.files):
                raise ValueError(
                    f"{path} is not a trace file (needs {sorted(required)})"
                )
            return cls(
                MemoryAccess(
                    gap_instructions=int(gap),
                    is_write=bool(write),
                    address=int(address),
                )
                for gap, write, address in zip(
                    data["gaps"], data["writes"], data["addresses"]
                )
            )
