"""Synthetic workload substrate: trace records, address streams, write
data patterns, and the Table IV benchmark suite."""

from .benchmarks import CORES, BenchmarkSpec, benchmark_suite, get_benchmark
from .datapatterns import PatternParams, WritePatternGenerator
from .synthetic import StreamParams, SyntheticStream
from .trace import MemoryAccess, Trace

__all__ = [
    "CORES",
    "BenchmarkSpec",
    "benchmark_suite",
    "get_benchmark",
    "PatternParams",
    "WritePatternGenerator",
    "StreamParams",
    "SyntheticStream",
    "MemoryAccess",
    "Trace",
]
