"""The simulated benchmark suite (Table IV).

Each entry reproduces one multi-programmed workload of the paper: eight
copies of a SPEC-CPU2006 / BioBench program (or the two mixes).  The
RPKI/WPKI columns are taken verbatim from Table IV; the remaining knobs
— working-set size, popularity skew, spatial run length, and the write
data-pattern statistics — are not published, so they are chosen to
reproduce the paper's qualitative characterisations:

* ``mcf`` and ``xalancbmk`` are the most write-bound (largest gains in
  Fig. 15); ``milc``, ``zeusmp`` and ``tigr`` have light write traffic
  (smallest gains);
* ``zeusmp`` writes modify ~30% of a line's cells (§VI), the suite
  average is ~10% (Fig. 14);
* ``xalancbmk`` is the only program where 7/8-bit MAT RESETs are not
  rare (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from .datapatterns import PatternParams
from .synthetic import StreamParams

__all__ = ["BenchmarkSpec", "benchmark_suite", "get_benchmark", "CORES"]

CORES = 8

_MB = (1 << 20) // 64  # lines per megabyte


@dataclass(frozen=True)
class _Program:
    """One constituent program of a multi-programmed workload."""

    rpki: float
    wpki: float
    working_set_mb: int
    zipf_alpha: float
    run_length: float
    changed_fraction: float
    in_word_change: float = 0.4


# SPEC-CPU2006 (C.) and BioBench (B.) programs used by Table IV.  The
# popularity skew (zipf_alpha) sets how much of each program's write
# traffic the 32 MB/core DRAM L3 absorbs, and is tuned so the baseline's
# slowdown against ora-64x64 matches Fig. 15's per-benchmark spread.
_PROGRAMS: dict[str, _Program] = {
    "astar": _Program(2.76, 1.34, 96, 1.15, 2.0, 0.08),
    "gemsFDTD": _Program(1.23, 1.13, 192, 1.25, 8.0, 0.12),
    "lbm": _Program(3.64, 1.88, 384, 1.15, 16.0, 0.10),
    "mcf": _Program(4.29, 3.89, 512, 1.25, 2.0, 0.09),
    "milc": _Program(1.69, 0.71, 128, 1.3, 6.0, 0.07),
    "xalancbmk": _Program(1.36, 1.22, 96, 1.0, 2.0, 0.16, in_word_change=0.8),
    "zeusmp": _Program(0.64, 0.47, 64, 1.15, 8.0, 0.30, in_word_change=0.6),
    "mummer": _Program(3.48, 1.13, 256, 1.3, 12.0, 0.06),
    "tigr": _Program(5.07, 0.42, 320, 1.35, 12.0, 0.05),
}


@dataclass(frozen=True)
class BenchmarkSpec:
    """A multi-programmed workload: one stream + pattern per core."""

    name: str
    description: str
    streams: tuple[StreamParams, ...]
    patterns: tuple[PatternParams, ...]

    @property
    def cores(self) -> int:
        return len(self.streams)


def _stream(program: _Program, core: int) -> StreamParams:
    return StreamParams(
        rpki=program.rpki,
        wpki=program.wpki,
        working_set_lines=program.working_set_mb * _MB,
        zipf_alpha=program.zipf_alpha,
        run_length=program.run_length,
        address_base=core << 40,  # disjoint address spaces per program copy
    )


def _pattern(program: _Program) -> PatternParams:
    return PatternParams(
        changed_fraction=program.changed_fraction,
        in_word_change=program.in_word_change,
    )


def _homogeneous(name: str, program_key: str, description: str) -> BenchmarkSpec:
    program = _PROGRAMS[program_key]
    return BenchmarkSpec(
        name=name,
        description=description,
        streams=tuple(_stream(program, core) for core in range(CORES)),
        patterns=tuple(_pattern(program) for _ in range(CORES)),
    )


def _mix(name: str, program_keys: list[str], description: str) -> BenchmarkSpec:
    programs = [_PROGRAMS[key] for key in program_keys for _ in range(2)]
    return BenchmarkSpec(
        name=name,
        description=description,
        streams=tuple(
            _stream(program, core) for core, program in enumerate(programs)
        ),
        patterns=tuple(_pattern(program) for program in programs),
    )


def benchmark_suite() -> dict[str, BenchmarkSpec]:
    """All Table IV workloads, keyed by their short name."""
    return {
        "ast_m": _homogeneous("ast_m", "astar", "SPEC-CPU2006, 8 C.astar"),
        "gem_m": _homogeneous("gem_m", "gemsFDTD", "SPEC-CPU2006, 8 C.gemsFDTD"),
        "lbm_m": _homogeneous("lbm_m", "lbm", "SPEC-CPU2006, 8 C.lbm"),
        "mcf_m": _homogeneous("mcf_m", "mcf", "SPEC-CPU2006, 8 C.mcf"),
        "mil_m": _homogeneous("mil_m", "milc", "SPEC-CPU2006, 8 C.milc"),
        "xal_m": _homogeneous(
            "xal_m", "xalancbmk", "SPEC-CPU2006, 8 C.xalancbmk"
        ),
        "zeu_m": _homogeneous("zeu_m", "zeusmp", "SPEC-CPU2006, 8 C.zeusmp"),
        "mum_m": _homogeneous("mum_m", "mummer", "BioBench, 8 B.mummer"),
        "tig_m": _homogeneous("tig_m", "tigr", "BioBench, 8 B.tigr"),
        "mix_1": _mix(
            "mix_1",
            ["astar", "milc", "xalancbmk", "mummer"],
            "2 C.ast - 2 C.mil - 2 C.xal - 2 B.mum",
        ),
        "mix_2": _mix(
            "mix_2",
            ["gemsFDTD", "lbm", "mcf", "zeusmp"],
            "2 C.gem - 2 C.lbm - 2 C.mcf - 2 C.zeu",
        ),
    }


def scale_benchmark(spec: BenchmarkSpec, factor: int) -> BenchmarkSpec:
    """Shrink a workload's working sets by ``factor`` for simulation.

    Full-size working sets need hundreds of millions of trace records
    before a 32 MB DRAM-L3 slice even fills.  The standard sampling
    trick scales the L3 (``SystemConfig.with_cpu(l3_bytes_per_core=...)``)
    and every working set down by the same factor: miss and write-back
    *rates* are preserved while traces shrink by orders of magnitude.
    """
    if factor < 1:
        raise ValueError(f"scale factor must be >= 1, got {factor}")
    from dataclasses import replace

    streams = tuple(
        replace(
            stream,
            working_set_lines=max(1024, stream.working_set_lines // factor),
        )
        for stream in spec.streams
    )
    return BenchmarkSpec(
        name=spec.name,
        description=spec.description,
        streams=streams,
        patterns=spec.patterns,
    )


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up one workload by name."""
    suite = benchmark_suite()
    if name not in suite:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(suite)}"
        )
    return suite[name]
