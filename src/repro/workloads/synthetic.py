"""Synthetic address-stream generation.

SPEC-CPU2006 / BioBench traces cannot be redistributed, so each
benchmark is replaced by a parameterised stochastic stream that matches
the properties the evaluation depends on: the L2-level RPKI/WPKI of
Table IV, the working-set size (which sets the DRAM-L3 miss rate), the
skew of the line-popularity distribution, and the spatial run length of
consecutive accesses.

The popularity model is a truncated discrete Pareto ("Zipf-like") over
the working set: rank r is accessed with probability proportional to
``1 / (r + q) ** alpha``.  ``hotness_rank`` exposes each line's
popularity percentile, which SCH scheduling consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import MemoryAccess, Trace

__all__ = ["StreamParams", "SyntheticStream"]


@dataclass(frozen=True)
class StreamParams:
    """Knobs of one core's synthetic access stream."""

    rpki: float  # L2-miss reads per kilo-instruction
    wpki: float  # L2 writebacks per kilo-instruction
    working_set_lines: int = 1 << 20  # 64 MB at 64B lines
    zipf_alpha: float = 0.9  # popularity skew (0 = uniform)
    run_length: float = 4.0  # mean sequential-line run
    address_base: int = 0  # start of this stream's address region

    def __post_init__(self) -> None:
        if self.rpki < 0 or self.wpki < 0:
            raise ValueError("RPKI/WPKI must be >= 0")
        if self.rpki + self.wpki <= 0:
            raise ValueError("the stream must produce some accesses")
        if self.working_set_lines < 1:
            raise ValueError("working set must hold at least one line")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be >= 0")
        if self.run_length < 1:
            raise ValueError("mean run length must be >= 1")


class SyntheticStream:
    """Reproducible per-core access stream.

    Every random draw comes from the instance's own generator, seeded
    explicitly at construction — there is no module-level RNG, so two
    streams built with the same (params, seed) are bit-identical.  The
    engine's :meth:`repro.engine.context.RunContext.seed_for` derives
    per-driver seeds; pass a :class:`numpy.random.Generator` directly to
    hand over an externally managed stream.
    """

    LINE_BYTES = 64

    _PERM_MULTIPLIER = 0x9E3779B1  # odd -> bijective modulo any even size

    def __init__(
        self, params: StreamParams, seed: "int | np.random.Generator" = 0
    ) -> None:
        self.params = params
        self._rng = np.random.default_rng(seed)
        self._mpki = params.rpki + params.wpki
        self._write_probability = params.wpki / self._mpki
        # Truncated-Pareto popularity with an analytic inverse CDF: no
        # per-line tables, so multi-GB working sets cost no memory.
        self._n = params.working_set_lines
        self._q = 2.0
        alpha = params.zipf_alpha
        if abs(alpha - 1.0) < 1e-9:
            self._log_base = np.log((self._n + self._q) / self._q)
        else:
            power = 1.0 - alpha
            self._pow_lo = self._q**power
            self._pow_hi = (self._n + self._q) ** power
        # A fixed multiplicative permutation scatters popularity ranks
        # over the region as in real heaps (bijective: the multiplier is
        # odd and working sets have an even number of lines).
        mult = self._PERM_MULTIPLIER
        self._mult = mult if int(np.gcd(mult, self._n)) == 1 else 1
        self._mult_inv = pow(self._mult, -1, self._n) if self._n > 1 else 1
        self._run_remaining = 0
        self._run_line = 0

    # -- popularity -------------------------------------------------------------

    def _rank_to_line(self, rank: int) -> int:
        return (rank * self._mult) % self._n

    def _line_to_rank(self, line: int) -> int:
        return (line * self._mult_inv) % self._n

    def _draw_rank(self) -> int:
        u = self._rng.random()
        alpha = self.params.zipf_alpha
        if abs(alpha - 1.0) < 1e-9:
            rank = self._q * np.exp(u * self._log_base) - self._q
        else:
            power = 1.0 - alpha
            rank = (
                self._pow_lo + u * (self._pow_hi - self._pow_lo)
            ) ** (1.0 / power) - self._q
        return min(self._n - 1, max(0, int(rank)))

    def hotness_rank(self, address: int) -> float:
        """Popularity percentile of a line: 0.0 = hottest."""
        line = (address - self.params.address_base) // self.LINE_BYTES
        line %= self._n
        return float(self._line_to_rank(line)) / self._n

    # -- generation ----------------------------------------------------------------

    def _next_line(self) -> int:
        if self._run_remaining > 0:
            self._run_remaining -= 1
            self._run_line = (self._run_line + 1) % self.params.working_set_lines
            return self._run_line
        if self.params.run_length > 1.0:
            self._run_remaining = int(
                self._rng.geometric(1.0 / self.params.run_length)
            ) - 1
        line = self._rank_to_line(self._draw_rank())
        self._run_line = line
        return line

    def next_access(self) -> MemoryAccess:
        """Generate the next access of the stream."""
        gap = int(self._rng.geometric(self._mpki / 1000.0))
        line = self._next_line()
        address = self.params.address_base + line * self.LINE_BYTES
        is_write = bool(self._rng.random() < self._write_probability)
        return MemoryAccess(
            gap_instructions=gap, is_write=is_write, address=address
        )

    def take(self, count: int) -> Trace:
        """Materialise ``count`` accesses as a replayable trace."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return Trace(self.next_access() for _ in range(count))
