"""Write data-pattern generation (feeds Figs. 9 and 14).

What the write path needs from "data" is only which cells flip, and in
which direction — the RESET/SET masks after Flip-N-Write.  Real
programs update a few dirty words per line with a handful of changed
bits each, which is why most of a line's 64 MATs see no RESET at all in
a write while a few see 1-3 (Fig. 9).

The generator draws, per write, a number of dirty 32-bit words
(geometric, matched to the benchmark's mean changed-cell fraction) and
flips each dirty word's bits with an in-word change probability; each
changed bit becomes a RESET or a SET with equal probability (steady
state of Flip-N-Write keeps the 0->1 / 1->0 flows balanced).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PatternParams", "WritePatternGenerator"]


@dataclass(frozen=True)
class PatternParams:
    """Per-benchmark write-pattern statistics."""

    changed_fraction: float = 0.10  # mean fraction of line cells changed
    word_bits: int = 32
    in_word_change: float = 0.4  # P(bit flips | its word is dirty)

    def __post_init__(self) -> None:
        if not 0.0 < self.changed_fraction <= 1.0:
            raise ValueError(
                f"changed fraction must be in (0, 1], got {self.changed_fraction}"
            )
        if not 0.0 < self.in_word_change <= 1.0:
            raise ValueError(
                f"in-word change must be in (0, 1], got {self.in_word_change}"
            )
        if self.word_bits < 1:
            raise ValueError(f"word size must be >= 1, got {self.word_bits}")


class WritePatternGenerator:
    """Draws (RESET mask, SET mask) pairs for line writes.

    All randomness lives in the instance's own generator, seeded
    explicitly at construction (no module-level RNG): identical
    (params, line_bits, seed) triples reproduce identical mask
    sequences, which is what makes repeated ``fig09``/``fig14`` runs
    bit-identical.  The seed may also be a ready-made
    :class:`numpy.random.Generator` (e.g. from
    :meth:`repro.engine.context.RunContext.rng`).
    """

    def __init__(
        self,
        params: PatternParams,
        line_bits: int = 512,
        seed: "int | np.random.Generator" = 0,
    ) -> None:
        if line_bits % params.word_bits:
            raise ValueError(
                f"word size {params.word_bits} must divide line size {line_bits}"
            )
        self.params = params
        self.line_bits = line_bits
        self.words = line_bits // params.word_bits
        self._rng = np.random.default_rng(seed)
        # Mean dirty words so that E[changed bits] matches the target:
        # changed_fraction * line_bits = dirty_words * word_bits * in_word.
        target_bits = params.changed_fraction * line_bits
        self._mean_dirty_words = max(
            1.0, target_bits / (params.word_bits * params.in_word_change)
        )

    def masks(self) -> tuple[np.ndarray, np.ndarray]:
        """One write's (RESET, SET) cell masks, each ``line_bits`` long."""
        params = self.params
        rng = self._rng
        dirty = min(
            self.words, int(rng.geometric(1.0 / self._mean_dirty_words))
        )
        dirty_words = rng.choice(self.words, size=dirty, replace=False)
        changed = np.zeros(self.line_bits, dtype=bool)
        for word in dirty_words:
            start = word * params.word_bits
            flips = rng.random(params.word_bits) < params.in_word_change
            changed[start : start + params.word_bits] = flips
        direction = rng.random(self.line_bits) < 0.5
        resets = changed & direction
        sets = changed & ~direction
        return resets, sets

    def mean_changed_bits(self, samples: int = 200) -> float:
        """Empirical mean changed cells per write (for calibration tests)."""
        total = 0
        for _ in range(samples):
            resets, sets = self.masks()
            total += int(resets.sum() + sets.sum())
        return total / samples
