"""CMP substrate: set-associative caches, the per-core DRAM-L3
hierarchy, interval cores, and the trace-driven system simulator."""

from .cache import AccessResult, SetAssociativeCache
from .core import CoreState
from .hierarchy import CoreCacheHierarchy, HierarchyOutcome
from .system import SimulationResult, SystemSimulator

__all__ = [
    "AccessResult",
    "SetAssociativeCache",
    "CoreState",
    "CoreCacheHierarchy",
    "HierarchyOutcome",
    "SimulationResult",
    "SystemSimulator",
]
