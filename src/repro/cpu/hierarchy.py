"""Per-core cache hierarchy (Table III).

Each core owns a private L1, L2 and an in-package DRAM L3 slice (32 MB,
16-way) that buffers write-intensive lines in front of the ReRAM main
memory [32].  ``access_full`` walks all three levels for raw CPU-level
address streams (the examples use this); ``access_l3`` serves the
benchmark path, whose synthetic traces are already at the L2-miss level
(Table IV's RPKI/WPKI).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CpuParams
from .cache import SetAssociativeCache

__all__ = ["HierarchyOutcome", "CoreCacheHierarchy"]


@dataclass(frozen=True)
class HierarchyOutcome:
    """What one access did to the memory system."""

    level: str  # "L1" | "L2" | "L3" | "MEM"
    memory_read: bool  # an L3 miss fetches the line from main memory
    writeback_address: int | None  # dirty L3 victim -> main-memory write


class CoreCacheHierarchy:
    """Private L1 + L2 + DRAM-L3 stack of one core."""

    def __init__(self, params: CpuParams) -> None:
        self.params = params
        self.l1 = SetAssociativeCache(params.l1_bytes, params.l1_ways, params.line_bytes)
        self.l2 = SetAssociativeCache(params.l2_bytes, params.l2_ways, params.line_bytes)
        self.l3 = SetAssociativeCache(
            params.l3_bytes_per_core, params.l3_ways, params.line_bytes
        )

    def access_full(self, address: int, is_write: bool) -> HierarchyOutcome:
        """CPU-level access walking L1 -> L2 -> L3.

        Lower-level write-backs are folded into the L3 as dirtying
        writes; only the L3's behaviour reaches main memory.
        """
        l1 = self.l1.access(address, is_write)
        if l1.hit:
            return HierarchyOutcome("L1", memory_read=False, writeback_address=None)
        if l1.writeback_address is not None:
            self._spill_to_l2(l1.writeback_address)
        l2 = self.l2.access(address, is_write)
        if l2.hit:
            return HierarchyOutcome("L2", memory_read=False, writeback_address=None)
        if l2.writeback_address is not None:
            # The L2 victim dirties the L3 (it hits there by inclusion,
            # or allocates).
            self.l3.access(l2.writeback_address, True)
        return self.access_l3(address, is_write)

    def access_l3(self, address: int, is_write: bool) -> HierarchyOutcome:
        """L2-miss-level access: only the DRAM L3 stands before memory.

        A write here is an L2 write-back carrying the full line, so an
        L3 write miss allocates without fetching from main memory; only
        read misses cost a memory read.  Either kind of miss can evict a
        dirty victim toward the ReRAM.
        """
        result = self.l3.access(address, is_write)
        if result.hit:
            return HierarchyOutcome("L3", memory_read=False, writeback_address=None)
        return HierarchyOutcome(
            "MEM",
            memory_read=not is_write,
            writeback_address=result.writeback_address,
        )

    def _spill_to_l2(self, address: int) -> None:
        l2 = self.l2.access(address, True)
        if l2.writeback_address is not None:
            self.l3.access(l2.writeback_address, True)
