"""Trace-driven CMP + memory-system simulator (§V).

Eight interval-model cores play their benchmark's L2-miss streams
through private DRAM-L3 slices; L3 misses become main-memory reads
(which stall the issuing core, discounted by MLP) and dirty L3 victims
become main-memory writes (posted, but subject to write-queue
backpressure).  The ReRAM write path — Flip-N-Write masks, the active
scheme's partitioner and voltage levels, pump constraints, write bursts
— is the event-driven controller of :mod:`repro.mem.controller`.

``Speedup = IPC_tech / IPC_base`` on the identical trace is the paper's
performance metric (§V).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

from ..config import SystemConfig
from ..mem.controller import ControllerStats, MemoryController
from ..mem.dimm import AddressMapping
from ..mem.line_codec import LineWriteModel
from ..techniques.base import Scheme
from ..workloads.benchmarks import BenchmarkSpec
from ..workloads.datapatterns import WritePatternGenerator
from ..workloads.synthetic import SyntheticStream
from .core import CoreState
from .hierarchy import CoreCacheHierarchy

__all__ = ["SimulationResult", "SystemSimulator"]


@dataclass
class SimulationResult:
    """Everything a figure driver needs from one run."""

    benchmark: str
    scheme: str
    instructions: int
    elapsed_s: float
    per_core_ipc: list[float]
    stats: ControllerStats
    l3_miss_rate: float
    memory_reads: int
    memory_writes: int

    @property
    def ipc(self) -> float:
        """CMP throughput: the sum of per-core IPCs (§V's metric base)."""
        return sum(self.per_core_ipc)


class SystemSimulator:
    """One (benchmark, scheme) run."""

    def __init__(
        self,
        config: SystemConfig,
        scheme: Scheme,
        benchmark: BenchmarkSpec,
        accesses_per_core: int = 20_000,
        seed: int = 1,
        warmup_accesses: int = 0,
    ) -> None:
        self.config = config
        self.scheme = scheme
        self.benchmark = benchmark
        self.accesses_per_core = accesses_per_core
        self.warmup_accesses = warmup_accesses
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._seq = itertools.count()
        self.controller = MemoryController(config, scheme, self._schedule)
        self.mapping = AddressMapping(
            config.memory, config.array.size, scheduling=scheme.scheduling
        )
        self.write_model = LineWriteModel(config, scheme)
        self.cores: list[CoreState] = []
        self.hierarchies: list[CoreCacheHierarchy] = []
        self.streams: list[SyntheticStream] = []
        self.patterns: list[WritePatternGenerator] = []
        line_bits = config.memory.line_bytes * 8
        for core_id in range(benchmark.cores):
            core = CoreState(
                params=config.cpu,
                core_id=core_id,
                effective_mlp=min(4.0, float(config.cpu.mshrs_per_core)),
            )
            self.cores.append(core)
            self.hierarchies.append(CoreCacheHierarchy(config.cpu))
            self.streams.append(
                SyntheticStream(benchmark.streams[core_id], seed=seed + core_id)
            )
            self.patterns.append(
                WritePatternGenerator(
                    benchmark.patterns[core_id],
                    line_bits=line_bits,
                    seed=seed + 1000 + core_id,
                )
            )
        self._remaining = [accesses_per_core] * benchmark.cores
        import numpy as _np

        self._maintenance_rng = _np.random.default_rng(seed + 991)
        # A dedicated generator keeps demand-write patterns identical
        # across schemes regardless of the maintenance rate.
        self._maintenance_patterns = WritePatternGenerator(
            benchmark.patterns[0], line_bits=line_bits, seed=seed + 2000
        )

    # -- event engine --------------------------------------------------------------

    def _schedule(self, time: float, callback: Callable[[float], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def _run_heap(self) -> float:
        last = 0.0
        while self._heap:
            time, _, callback = heapq.heappop(self._heap)
            last = max(last, time)
            callback(time)
        return last

    # -- core behaviour -----------------------------------------------------------------

    def _core_step(self, now: float, core_id: int) -> None:
        if self._remaining[core_id] <= 0:
            return
        self._remaining[core_id] -= 1
        core = self.cores[core_id]
        stream = self.streams[core_id]
        access = stream.next_access()
        core.advance_compute(access.gap_instructions)
        outcome = self.hierarchies[core_id].access_l3(
            access.address, access.is_write
        )
        if outcome.level == "L3":
            if not access.is_write:
                core.stall_cycles(self.config.cpu.l3_hit_cycles)
            self._schedule_next(core_id)
            return
        # L3 read miss: fetch the line from main memory (write misses
        # are L2 write-backs carrying the full line -- no fetch).
        issue = core.time_s
        blocked = False
        if outcome.memory_read:
            location = self._locate(core_id, access.address)

            def on_read_done(completion: float, c=core, t=issue, cid=core_id) -> None:
                c.stall_for_read(t, completion)
                self._schedule_next(cid)

            self.controller.submit_read(issue, location, on_read_done)
            blocked = True
        # ... and a dirty victim, if any, is written back to ReRAM.
        if outcome.writeback_address is not None:
            self._submit_write(core_id, outcome.writeback_address, blocked)
        elif not blocked:
            self._schedule_next(core_id)

    def _submit_write(
        self, core_id: int, address: int, read_blocked: bool
    ) -> None:
        core = self.cores[core_id]
        resets, sets = self.patterns[core_id].masks()
        location = self._locate(core_id, address)
        result = self.write_model.write(resets, sets, location.row)
        now = core.time_s
        # Wear-leveling swaps (or SCH/RBDL migrations) add background
        # line writes proportional to demand writes.
        if self._maintenance_rng.random() < self.scheme.maintenance_write_rate:
            extra_resets, extra_sets = self._maintenance_patterns.masks()
            extra_row = int(self._maintenance_rng.integers(self.config.array.size))
            extra = self.write_model.write(extra_resets, extra_sets, extra_row)
            self.controller.try_submit_write(now, location, extra)

        def attempt(time: float) -> None:
            core.stall_until(time)
            if self.controller.try_submit_write(core.time_s, location, result):
                if not read_blocked:
                    self._schedule_next(core_id)
            else:
                # Queue full: the core stalls until a slot frees [35].
                self.controller.notify_write_space(attempt)

        attempt(now)

    def _locate(self, core_id: int, address: int):
        hotness = (
            self.streams[core_id].hotness_rank(address)
            if self.scheme.scheduling
            else None
        )
        return self.mapping.locate(address, hotness)

    def _schedule_next(self, core_id: int) -> None:
        if self._remaining[core_id] > 0:
            self._schedule(
                self.cores[core_id].time_s,
                lambda now, cid=core_id: self._core_step(now, cid),
            )

    # -- driving --------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full trace and return the aggregated result."""
        # Warm the DRAM-L3 slices so the measured window sees steady-state
        # miss and write-back rates.  Warmup consumes stream records and
        # updates cache state only -- no timing, no memory traffic --
        # and is identical for every scheme.
        for core_id in range(len(self.cores)):
            stream = self.streams[core_id]
            hierarchy = self.hierarchies[core_id]
            for _ in range(self.warmup_accesses):
                access = stream.next_access()
                hierarchy.access_l3(access.address, access.is_write)
        for core_id in range(len(self.cores)):
            self._schedule(
                0.0, lambda now, cid=core_id: self._core_step(now, cid)
            )
        last = self._run_heap()
        # Cores can be parked waiting for a write-queue slot while the
        # event heap is empty (reads stopped arriving, so queued writes
        # never drained).  Force drains until everything retires.
        for _ in range(len(self.cores) * self.accesses_per_core + 1):
            if not any(self._remaining) and self.controller.write_queue_depth == 0:
                break
            self.controller.drain(last)
            if not self._heap:
                break
            last = max(last, self._run_heap())
        if any(self._remaining):
            raise RuntimeError(
                f"simulation deadlock: {self._remaining} accesses unconsumed"
            )
        elapsed = max(core.time_s for core in self.cores)
        hierarchy_misses = sum(h.l3.misses for h in self.hierarchies)
        hierarchy_accesses = sum(h.l3.accesses for h in self.hierarchies)
        return SimulationResult(
            benchmark=self.benchmark.name,
            scheme=self.scheme.name,
            instructions=sum(core.instructions for core in self.cores),
            elapsed_s=elapsed,
            per_core_ipc=[core.ipc for core in self.cores],
            stats=self.controller.stats,
            l3_miss_rate=(
                hierarchy_misses / hierarchy_accesses if hierarchy_accesses else 0.0
            ),
            memory_reads=self.controller.stats.reads,
            memory_writes=self.controller.stats.writes,
        )
