"""Set-associative cache model (Table III's L1/L2/L3).

A functional write-back, write-allocate cache with LRU replacement.
``access`` reports the hit/miss outcome and any dirty victim evicted by
the fill — the victim write-backs are what become ReRAM main-memory
writes once they fall out of the in-package DRAM L3.

LRU is kept with an access stamp per way; sets are dictionaries keyed
by set index so multi-gigabyte address spaces cost memory proportional
to the cache, not the footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccessResult", "SetAssociativeCache"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    writeback_address: int | None  # dirty victim evicted by the fill


class SetAssociativeCache:
    """Write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int = 64) -> None:
        if size_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (ways * line_bytes):
            raise ValueError(
                f"size {size_bytes} not divisible by ways*line "
                f"({ways} * {line_bytes})"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets = size_bytes // (ways * line_bytes)
        # set index -> {tag: (stamp, dirty)}
        self._sets: dict[int, dict[int, tuple[int, bool]]] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.sets, line // self.sets

    def access(self, address: int, is_write: bool) -> AccessResult:
        """Read or write one line; allocate on miss."""
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        self._clock += 1
        set_index, tag = self._locate(address)
        ways = self._sets.setdefault(set_index, {})
        if tag in ways:
            _, dirty = ways[tag]
            ways[tag] = (self._clock, dirty or is_write)
            self.hits += 1
            return AccessResult(hit=True, writeback_address=None)
        self.misses += 1
        writeback = None
        if len(ways) >= self.ways:
            victim_tag = min(ways, key=lambda t: ways[t][0])
            _, victim_dirty = ways.pop(victim_tag)
            if victim_dirty:
                victim_line = victim_tag * self.sets + set_index
                writeback = victim_line * self.line_bytes
        ways[tag] = (self._clock, is_write)
        return AccessResult(hit=False, writeback_address=writeback)

    def contains(self, address: int) -> bool:
        """Whether the line is currently cached (no LRU update)."""
        set_index, tag = self._locate(address)
        return tag in self._sets.get(set_index, {})

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
