"""Interval core model (after Sniper's mechanistic cores [34]).

An out-of-order core sustains its base CPI while the reorder buffer
hides short latencies; long-latency events (DRAM-L3 hits, main-memory
reads) stall it for the exposed fraction of their latency.  Memory-level
parallelism (bounded by the per-core MSHRs) overlaps concurrent misses,
so a read's exposed stall is ``latency / effective_mlp``.

Stores retire through the write path without stalling unless the memory
controller back-pressures (write queue full), which the system
simulator models explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CpuParams

__all__ = ["CoreState"]


@dataclass
class CoreState:
    """Timing accumulator of one core."""

    params: CpuParams
    core_id: int
    time_s: float = 0.0
    instructions: int = 0
    stall_s: float = 0.0
    effective_mlp: float = 4.0  # overlapped misses (<= MSHRs)

    def advance_compute(self, instructions: int) -> None:
        """Retire ``instructions`` at the base CPI."""
        if instructions < 0:
            raise ValueError(f"instructions must be >= 0, got {instructions}")
        self.instructions += instructions
        self.time_s += instructions * self.params.base_cpi * self.params.cycle_s

    def stall_cycles(self, cycles: float) -> None:
        """Expose a fixed-cycle stall (e.g. a DRAM-L3 hit)."""
        seconds = cycles * self.params.cycle_s
        self.time_s += seconds
        self.stall_s += seconds

    def stall_for_read(self, issue_time: float, completion_time: float) -> None:
        """Expose a main-memory read, discounted by MLP overlap."""
        latency = max(0.0, completion_time - issue_time)
        exposed = latency / max(1.0, self.effective_mlp)
        self.time_s = max(self.time_s, issue_time + exposed)
        self.stall_s += exposed

    def stall_until(self, time_s: float) -> None:
        """Hard stall (write-queue backpressure)."""
        if time_s > self.time_s:
            self.stall_s += time_s - self.time_s
            self.time_s = time_s

    @property
    def cycles(self) -> float:
        return self.time_s / self.params.cycle_s

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0
