"""Configuration dataclasses for the ReRAM system model.

The defaults reproduce Table I (cell / CP array / bank model) and
Table III (baseline system configuration) of the paper.  Every parameter
is stored in SI units; constructors accept the paper's units through the
helpers in :mod:`repro.units`.

All configuration objects are frozen: experiments derive variants with
:func:`dataclasses.replace`, which keeps parameter sweeps explicit and
hashable (maps of IR-drop results are cached per configuration).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Mapping

from .units import mA, nJ, ns, pJ, uA

__all__ = [
    "CellParams",
    "SelectorParams",
    "ArrayParams",
    "PumpParams",
    "MemoryParams",
    "CpuParams",
    "LifetimeParams",
    "SystemConfig",
    "default_config",
    "config_hash",
]


@dataclass(frozen=True)
class SelectorParams:
    """Bipolar access device (MASiM-like) model parameters.

    The selector passes the full cell current when fully selected and
    attenuates current by the nonlinear selectivity ``kr`` at half-select
    voltage (Table I: ``Kr = 1000``).  ``leak_sat_ratio`` caps the
    subthreshold leakage a few times above the nominal half-select
    current, modelling the saturation past the exponential knee typical
    of MASiM/MIEC devices (Fig. 1c).
    """

    kr: float = 1000.0
    leak_sat_ratio: float = 1.0  # leakage cap over the nominal half-select leak

    def __post_init__(self) -> None:
        if self.kr <= 1.0:
            raise ValueError(f"selector kr must exceed 1, got {self.kr}")
        if self.leak_sat_ratio <= 0.0:
            raise ValueError(
                f"leak_sat_ratio must be positive, got {self.leak_sat_ratio}"
            )


@dataclass(frozen=True)
class CellParams:
    """ReRAM cell electrical and reliability model (Table I + §II-B).

    Equation 1 of the paper gives the RESET latency
    ``Trst = beta * exp(-k * Veff)``; Equation 2 gives the endurance
    ``E = (Trst / T0) ** C``.  The fitting constants are derived from the
    anchors the paper publishes rather than stored directly:

    * no voltage drop: ``Trst = 15 ns`` at ``Veff = 3 V``,
      endurance ``5e6`` writes;
    * worst corner of a 512x512 array: ``Veff = 1.7 V`` -> ``2.3 us``.
    """

    i_on: float = uA(90.0)  # LRS cell current during RESET
    r_lrs: float = 3.0 / uA(90.0)  # LRS resistance at full RESET bias
    hrs_ratio: float = 100.0  # R_HRS / R_LRS
    v_reset: float = 3.0  # full-select RESET voltage (applied on BL)
    v_set: float = 3.0
    v_read: float = 1.8
    v_write_fail: float = 1.7  # below this effective voltage a write fails [26]
    t_reset_nominal: float = ns(15.0)  # RESET latency with no voltage drop [9]
    v_nominal: float = 3.0  # effective voltage at which t_reset_nominal holds
    t_reset_worst: float = ns(2300.0)  # array RESET latency at v_eff_worst
    v_eff_worst: float = 1.7  # worst-corner effective Vrst in the baseline array
    endurance_nominal: float = 5e6  # writes tolerated with no voltage drop [3]
    endurance_exponent: float = 3.0  # C in Equation 2 [3]
    i_set: float = uA(98.6)
    e_set_per_bit: float = pJ(29.8)

    def __post_init__(self) -> None:
        if self.v_eff_worst >= self.v_nominal:
            raise ValueError("worst-case effective voltage must be below nominal")
        if self.t_reset_worst <= self.t_reset_nominal:
            raise ValueError("worst-case RESET latency must exceed nominal latency")
        for name in ("i_on", "v_reset", "t_reset_nominal", "endurance_nominal"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class ArrayParams:
    """Cross-point MAT geometry and wiring (Table I)."""

    size: int = 512  # A: the MAT is size x size cells
    data_width: int = 8  # bits read/written per MAT (8 SAs/WDs)
    r_wire: float = 11.5  # wire resistance between adjacent cells (20 nm)
    tech_node_nm: float = 20.0
    selector: SelectorParams = field(default_factory=SelectorParams)
    drvr_sections: int = 8  # BL sections addressed by the row-address MSBs
    udrvr_levels: int = 8  # Vrst levels across the WL (one per column mux)
    # Calibration constant: per-cell half-select sneak current relative
    # to the nominal Ion/Kr.  At 0.95 the model reproduces the paper's
    # published worst-corner drop (1.7 V effective at 3 V applied, 2.3 us
    # array RESET) and left-most-BL drop (0.66 V) simultaneously, with no
    # cell pushed below the 1.7 V write-failure floor; see
    # tests/circuit/test_calibration.py.
    sneak_boost: float = 0.95
    # Paper Fig. 8 lumped word-line model: fraction of the word-line that
    # acts as the shared trunk carrying the coalesced current of all
    # concurrent RESETs.  A/16 places the multi-bit sweet spot at N = 4
    # concurrent RESETs, matching Fig. 11a.
    wl_trunk_fraction: float = 1.0 / 16.0

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError(f"array size must be >= 2, got {self.size}")
        if self.data_width < 1 or self.size % self.data_width:
            raise ValueError("data_width must divide the array size")
        if self.r_wire <= 0:
            raise ValueError("wire resistance must be positive")
        if self.drvr_sections < 1 or self.size % self.drvr_sections:
            raise ValueError("drvr_sections must divide the array size")
        if self.udrvr_levels < 1:
            raise ValueError("udrvr_levels must be >= 1")

    @property
    def cells_per_mux(self) -> int:
        """BLs multiplexed onto one write driver (64:1 for 512/8)."""
        return self.size // self.data_width

    @property
    def section_rows(self) -> int:
        """Rows per DRVR section (64 for 512/8)."""
        return self.size // self.drvr_sections


@dataclass(frozen=True)
class PumpParams:
    """On-chip charge pump model (§II-C, Table III, [29])."""

    vdd: float = 1.8
    v_out: float = 3.0  # baseline output voltage
    v_out_udrvr: float = 3.66  # with the extra UDRVR stage (§IV-C)
    i_reset_budget: float = mA(23.0)  # total current at v_out for RESETs
    i_set_budget: float = mA(25.0)
    max_concurrent_writes: int = 256  # RESETs/SETs per phase for a 64B line
    efficiency: float = 0.33
    t_charge: float = ns(28.0)
    t_discharge: float = ns(21.0)
    e_charge: float = nJ(17.8)
    e_discharge: float = nJ(13.1)
    leakage_w: float = 62.2e-3
    area_mm2: float = 19.3  # 11% of a 4GB 20nm chip
    frequency_hz: float = 133e6

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1:
            raise ValueError("pump efficiency must be in (0, 1]")
        if self.v_out < self.vdd:
            raise ValueError("pump output voltage must be at least Vdd")


@dataclass(frozen=True)
class MemoryParams:
    """Main memory geometry and timing (Table III)."""

    capacity_bytes: int = 64 << 30  # 64 GB
    channels: int = 1
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    chips_per_rank: int = 8
    chip_capacity_bytes: int = 4 << 30
    line_bytes: int = 64
    bus_mhz: float = 1066.0
    read_queue_entries: int = 24
    write_queue_entries: int = 24
    mc_to_bank_cycles: int = 64  # CPU cycles
    t_rcd: float = ns(18.0)
    t_cl: float = ns(10.0)
    t_faw: float = ns(30.0)
    t_cwd: float = ns(13.0)
    t_wtr: float = ns(7.5)
    e_read_line: float = nJ(5.6)
    chip_area_mm2: float = 175.0  # 4GB 20nm chip (pump = 11% = 19.3mm2)
    chip_leakage_w: float = 0.55  # array peripheral leakage per chip, baseline

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a positive power of two")
        total = (
            self.channels
            * self.ranks_per_channel
            * self.chips_per_rank
            * self.chip_capacity_bytes
        )
        if total != self.capacity_bytes:
            raise ValueError(
                f"capacity {self.capacity_bytes} does not match geometry total {total}"
            )

    @property
    def total_banks(self) -> int:
        """Logic banks across the whole memory (interleaved over chips)."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def arrays_per_line(self) -> int:
        """A 64B line is striped over 64 8-bit-wide MATs (§IV-B)."""
        return self.line_bytes


@dataclass(frozen=True)
class CpuParams:
    """CMP model parameters (Table III)."""

    cores: int = 8
    freq_ghz: float = 3.2
    issue_width: int = 4
    mshrs_per_core: int = 8
    rob_entries: int = 128
    base_cpi: float = 0.5  # 4-wide OoO sustained CPI on cache hits
    l1_bytes: int = 32 << 10
    l1_ways: int = 4
    l1_hit_cycles: int = 1
    l2_bytes: int = 2 << 20
    l2_ways: int = 8
    l2_hit_cycles: int = 5
    l3_bytes_per_core: int = 32 << 20  # in-package DRAM cache
    l3_ways: int = 16
    l3_hit_cycles: int = 96
    line_bytes: int = 64

    @property
    def cycle_s(self) -> float:
        return 1e-9 / self.freq_ghz


@dataclass(frozen=True)
class LifetimeParams:
    """Lifetime-estimation assumptions (§III-A / Fig. 5b)."""

    flip_n_write_fraction: float = 0.5  # cells changed per worst-case write
    ecp_per_line: int = 6  # error-correcting pointers per 64B line [33]
    wear_leveling_perfect: bool = True
    set_phase_fraction: float = 0.35  # SET phase share of a write cycle
    write_overhead: float = ns(30.0)  # decode + pump handshake per write


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of every parameter set; the unit handed to experiments."""

    cell: CellParams = field(default_factory=CellParams)
    array: ArrayParams = field(default_factory=ArrayParams)
    pump: PumpParams = field(default_factory=PumpParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    lifetime: LifetimeParams = field(default_factory=LifetimeParams)

    def with_array(self, **changes) -> "SystemConfig":
        """Derive a config with array parameters replaced."""
        return replace(self, array=replace(self.array, **changes))

    def with_cell(self, **changes) -> "SystemConfig":
        return replace(self, cell=replace(self.cell, **changes))

    def with_pump(self, **changes) -> "SystemConfig":
        return replace(self, pump=replace(self.pump, **changes))

    def with_memory(self, **changes) -> "SystemConfig":
        return replace(self, memory=replace(self.memory, **changes))

    def with_cpu(self, **changes) -> "SystemConfig":
        return replace(self, cpu=replace(self.cpu, **changes))


def default_config(**array_changes: Mapping) -> SystemConfig:
    """The paper's baseline configuration (Tables I and III)."""
    config = SystemConfig()
    if array_changes:
        config = config.with_array(**array_changes)
    return config


def config_hash(config: SystemConfig) -> str:
    """Stable content hash of a configuration (or any params dataclass).

    The hash is a SHA-256 digest of the canonical JSON rendering of the
    dataclass fields (sorted keys, recursive), truncated to 16 hex
    characters.  Two structurally equal configurations hash equal across
    processes and interpreter runs, which makes the hash usable as a
    cache key for IR-drop models and on-disk experiment results — unlike
    ``hash()``, which Python salts per process.
    """
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise TypeError(f"expected a params dataclass instance, got {config!r}")
    doc = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(doc.encode()).hexdigest()[:16]
