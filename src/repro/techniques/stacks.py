"""Composite schemes and the evaluation registry (§VI).

The paper evaluates stacks of prior techniques against its own:

* ``Hard`` — all three hardware baselines at once: DSGB grounds, DSWD
  drivers and D-BL forced full-width RESETs.  Makes a 512x512 array
  behave roughly like a 100x256 one, at +59% chip area and +80%
  leakage.
* ``Hard+Sys`` — ``Hard`` plus SCH scheduling and RBDL layout; closer
  to ora-128x128 but incompatible with wear leveling (lifetime collapses
  to days, Fig. 5b).
* ``DRVR``, ``UDRVR+PR``, ``UDRVR-3.94`` — this paper's techniques.
* ``ora-m×m`` — the oracle normalisation references.

``standard_schemes`` builds the full dictionary used by the figure
drivers (Figs. 5c, 15-20).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..circuit.crosspoint import BiasScheme
from ..config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.context import RunContext
from .base import Scheme
from .baseline import make_baseline, make_naive_high_voltage
from .drvr import make_drvr
from .dsgb import DSGB_OVERHEADS
from .dswd import DSWD_OVERHEADS
from .dummy_bl import DBL_OVERHEADS, DummyBitlinePartitioner
from .oracle import make_oracle
from .rbdl import RBDL_SNEAK_SCALE
from .udrvr import make_udrvr_high_voltage, make_udrvr_pr

__all__ = ["make_hard", "make_hard_sys", "make_drvr_pr", "standard_schemes"]

_HARD_BIAS = BiasScheme(
    name="hard", wl_ground_both_ends=True, bl_drive_both_ends=True
)
_HARD_OVERHEADS = DSGB_OVERHEADS.combine(DSWD_OVERHEADS).combine(DBL_OVERHEADS)


def make_hard(config: SystemConfig) -> Scheme:
    """DSGB + DSWD + D-BL applied together."""
    return Scheme(
        name="Hard",
        bias=_HARD_BIAS,
        partitioner=DummyBitlinePartitioner(),
        overheads=_HARD_OVERHEADS,
        description="all hardware baselines: DSGB + DSWD + D-BL",
    )


def make_hard_sys(config: SystemConfig) -> Scheme:
    """Hard plus the system baselines SCH and RBDL."""
    return Scheme(
        name="Hard+Sys",
        bias=_HARD_BIAS,
        partitioner=DummyBitlinePartitioner(),
        overheads=_HARD_OVERHEADS,
        scheduling=True,
        row_biased_layout=True,
        wear_leveling_compatible=False,
        sneak_scale=RBDL_SNEAK_SCALE,
        maintenance_write_rate=0.2,
        description="Hard + SCH scheduling + RBDL data layout",
    )


def make_drvr_pr(config: SystemConfig, model=None) -> Scheme:
    """DRVR + PR without the UDRVR endurance fix (§IV-B's waypoint)."""
    from dataclasses import replace

    from .partition_reset import PartitionResetPartitioner

    return replace(
        make_drvr(config, model=model),
        name="DRVR+PR",
        partitioner=PartitionResetPartitioner(),
        reset_before_set=True,
        description="DRVR voltage levels with partition RESET (no UDRVR)",
    )


def standard_schemes(
    config: SystemConfig,
    oracle_sections: tuple[int, ...] = (64, 128, 256),
    context: "RunContext | None" = None,
    model=None,
) -> dict[str, Scheme]:
    """All schemes the evaluation section compares (name -> scheme).

    Passing an engine :class:`~repro.engine.context.RunContext` memoises
    the built registry on the context, keyed by the config hash, so
    composed figures and repeated runner constructions share one set of
    scheme objects (and their lazily built latency tables).

    ``model`` is the calibrated fault-free IR model the level-solving
    factories (DRVR/UDRVR families) calibrate against; the context path
    supplies its own solver-threaded instance.
    """
    if context is not None:
        return context.schemes(config, tuple(oracle_sections))
    schemes = {
        "Base": make_baseline(config),
        "Hard": make_hard(config),
        "Hard+Sys": make_hard_sys(config),
        "DRVR": make_drvr(config, model=model),
        "DRVR+PR": make_drvr_pr(config, model=model),
        "UDRVR+PR": make_udrvr_pr(config, model=model),
        "UDRVR-3.94": make_udrvr_high_voltage(config, model=model),
        f"Static-{3.7:.2g}V": make_naive_high_voltage(config),
    }
    for m in oracle_sections:
        if config.array.size % m == 0 and m <= config.array.size:
            scheme = make_oracle(config, m)
            schemes[scheme.name] = scheme
    return schemes
