"""Dummy bit-lines (D-BL [4], Table II).

Each column multiplexer gains one redundant "dummy" BL.  During the
RESET phase of every write, any multiplexer whose data slice requires no
RESET resets its dummy BL instead — forcing a full-width multi-bit RESET
that partitions the array into eight equivalent circuits.  The cost:

* the charge pump must support the extra RESET current (2x in the worst
  case), adding +11% chip area and +27% chip leakage;
* on average 235% more RESETs than Flip-N-Write (Fig. 14), wearing out
  the dummy BLs, after which the scheme stops working;
* eight concurrent RESETs overshoot the Fig. 11a sweet spot — the
  coalesced WL current makes an eight-piece partition *worse* than a
  four-piece one, which is exactly the observation PR exploits.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from .base import ChipOverheads, Partitioner, Scheme, WritePlan

__all__ = ["DummyBitlinePartitioner", "DBL_OVERHEADS", "make_dbl"]

DBL_OVERHEADS = ChipOverheads(
    area_factor=1.11,
    leakage_factor=1.27,
    pump_area_factor=2.0,
    pump_leakage_factor=2.0,
    write_current_factor=2.0,
)


class DummyBitlinePartitioner(Partitioner):
    """Reset a dummy BL in every group that has no data RESET."""

    def plan(self, reset_bits: np.ndarray, set_bits: np.ndarray) -> WritePlan:
        reset_bits = np.asarray(reset_bits, dtype=bool)
        set_bits = np.asarray(set_bits, dtype=bool)
        width = reset_bits.size
        if not reset_bits.any():
            # No RESET phase at all -> no dummy activity either.
            return WritePlan(
                reset_groups=(),
                set_groups=tuple(int(i) for i in np.flatnonzero(set_bits)),
            )
        # Dummy resets replace nothing: every group participates in the
        # RESET phase, the dummies adding pure extra RESETs (no
        # compensating SET -- dummy BLs hold no data).
        extra = int(width - reset_bits.sum())
        return WritePlan(
            reset_groups=tuple(range(width)),
            set_groups=tuple(int(i) for i in np.flatnonzero(set_bits)),
            extra_resets=extra,
            extra_sets=0,
        )


def make_dbl(config: SystemConfig) -> Scheme:
    """Dummy bit-lines."""
    return Scheme(
        name="D-BL",
        partitioner=DummyBitlinePartitioner(),
        overheads=DBL_OVERHEADS,
        description="dummy BL per column mux, forced full-width RESETs",
    )
