"""Upgraded DRVR (UDRVR, §IV-C) and its combination with PR.

DRVR + PR shorten the array RESET latency so much that, under the
worst-case non-stop write traffic, the fast low-drop cells near the row
decoder wear out within a year.  UDRVR adds a variable-resistor array
(VRA) on the charge pump output that supplies a *lower* Vrst level to
each column-multiplexer group in proportion to the WL drop the group
does *not* suffer — pushing every cell's effective voltage toward that
of the right-most BL, equalising latency (the array budget is unchanged)
while raising the endurance of the left-most BLs, the array bottleneck.

Both UDRVR variants aim at the same effective-voltage target: the
right-most BL under PR's optimal concurrency (≈71 ns for the 20 nm
baseline).  UDRVR+PR reaches it by partitioning; UDRVR-3.94 (Fig. 17)
reaches it for *1-bit* RESETs purely with voltage — which requires a
taller pump (the far group must compensate the full 1-bit WL drop,
3.66 V + ~0.28 V ≈ 3.94 V) and leaves 3-6 bit RESETs exposed to the
coalesced-current drop on the near groups, exactly the failure mode the
paper describes.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..xpoint.vmap import ArrayIRModel, get_ir_model
from .base import ChipOverheads, MatrixRegulator, Scheme
from .drvr import DRVR_OVERHEADS, drvr_levels
from .partition_reset import PartitionResetPartitioner

__all__ = [
    "udrvr_col_deltas",
    "make_udrvr_pr",
    "make_udrvr_high_voltage",
]

# Fig. 17 discussion: the 3.94 V pump costs more than the UDRVR+PR pump.
_HIGH_V_EXTRA = ChipOverheads(
    pump_area_factor=1.23,
    pump_leakage_factor=1.155,
    pump_charge_latency_factor=1.034,
    pump_charge_energy_factor=1.041,
)


def _group_far_columns(model: ArrayIRModel) -> np.ndarray:
    """Far (worst) column of each column-multiplexer group."""
    a = model.config.array.size
    width = model.config.array.data_width
    return np.arange(width) * (a // width) + (a // width - 1)


def udrvr_col_deltas(
    config: SystemConfig,
    compensate_n_bits: int | None = None,
    target_n_bits: int | None = None,
    model: "ArrayIRModel | None" = None,
) -> tuple[float, ...]:
    """Per-column-group Vrst adjustments (V).

    Group ``m``'s level is shifted by the difference between its own WL
    drop at its operating concurrency and the far group's drop at
    ``target_n_bits`` (the common effective-voltage target, PR's optimum
    by default).

    The operating concurrency is ``compensate_n_bits``: PR's optimum by
    default, so UDRVR's deltas are non-positive (near groups are
    lowered, curing their over-RESET) and the pump output stays at
    DRVR's 3.66 V.  UDRVR-3.94 compensates the 1-bit drop everywhere
    instead, which pushes the far group's level up to ~3.94 V.

    ``model`` supplies the calibrated fault-free IR model for ``config``
    (see :func:`~repro.techniques.drvr.drvr_levels`).
    """
    if model is None:
        model = get_ir_model(config)
    wl = model.wl_model
    width = config.array.data_width
    if target_n_bits is None:
        target_n_bits = wl.optimal_bits()
    if compensate_n_bits is None:
        compensate_n_bits = target_n_bits
    far_cols = _group_far_columns(model)
    target_drop = float(wl.drop(int(far_cols[-1]), target_n_bits))
    drops = np.asarray(
        [wl.drop(int(c), compensate_n_bits) for c in far_cols]
    )
    return tuple(float(d - target_drop) for d in drops)


def make_udrvr_pr(
    config: SystemConfig, model: "ArrayIRModel | None" = None
) -> Scheme:
    """UDRVR + PR: the paper's headline scheme."""
    row_levels = drvr_levels(config, model=model)
    col_deltas = udrvr_col_deltas(config, model=model)
    return Scheme(
        name="UDRVR+PR",
        regulator=MatrixRegulator(tuple(row_levels), col_deltas),
        partitioner=PartitionResetPartitioner(),
        overheads=DRVR_OVERHEADS,
        reset_before_set=True,
        description="upgraded DRVR (per-column Vrst levels) with partition RESET",
    )


def make_udrvr_high_voltage(
    config: SystemConfig, model: "ArrayIRModel | None" = None
) -> Scheme:
    """UDRVR-3.94 (Fig. 17): voltage-only WL compensation, no PR."""
    row_levels = drvr_levels(config, model=model)
    col_deltas = udrvr_col_deltas(config, compensate_n_bits=1, model=model)
    return Scheme(
        name="UDRVR-3.94",
        regulator=MatrixRegulator(tuple(row_levels), col_deltas),
        overheads=DRVR_OVERHEADS.combine(_HIGH_V_EXTRA),
        description="UDRVR with 1-bit WL compensation by voltage only",
    )
