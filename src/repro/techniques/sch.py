"""Latency-aware scheduling (SCH [13, 14], Table II).

Different rows of a cross-point array have different RESET latencies
(Fig. 4c): rows near the write driver reset fast.  SCH remaps
write-intensive memory lines onto the fast rows.  The catch (§III-B):
inter-line wear leveling deliberately spreads hot lines over the whole
array, so SCH and wear leveling cannot coexist — enabling SCH forfeits
the >10-year lifetime guarantee (Fig. 5b, "Hard+Sys" fails in days).

In this model SCH is a scheme *flag* plus a hotness-to-row mapping the
memory system uses when translating line addresses to array rows: hot
lines land in the fastest (lowest) row sections.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from .base import Scheme

__all__ = ["make_sch", "scheduled_row"]


def scheduled_row(hotness_rank: float, array_size: int) -> int:
    """Map a line's write-hotness rank in [0, 1) to an array row.

    Rank 0 (hottest) lands on row 0 (fastest, nearest the WD); rank ~1
    (coldest) on the top row.  With scheduling disabled, rows are
    assigned uniformly by the wear-leveled address instead.
    """
    if not 0.0 <= hotness_rank < 1.0:
        raise ValueError(f"hotness rank must be in [0, 1), got {hotness_rank}")
    return int(np.floor(hotness_rank * array_size))


def make_sch(config: SystemConfig) -> Scheme:
    """Latency-aware write scheduling (incompatible with wear leveling)."""
    return Scheme(
        name="SCH",
        scheduling=True,
        wear_leveling_compatible=False,
        maintenance_write_rate=0.15,
        description="write-intensive lines remapped to fast rows",
    )
