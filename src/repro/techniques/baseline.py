"""Baseline and naive static-voltage schemes (§III / §IV-A).

* ``make_baseline`` — the unmodified 512x512 array: one static 3 V
  RESET level, V/2 half-select biasing, Flip-N-Write.  Its worst-case
  array RESET latency is ~2.3 us (Fig. 4c), which is what every
  mitigation technique is trying to fix.
* ``make_naive_high_voltage`` — the strawman of Fig. 6a: statically
  applying 3.7 V everywhere compensates the worst corner but over-RESETs
  the low-drop cells (1.5K-5K write endurance), collapsing the system
  lifetime to under a day (Fig. 5b).
"""

from __future__ import annotations

from ..config import SystemConfig
from .base import Scheme, StaticRegulator

__all__ = ["make_baseline", "make_naive_high_voltage", "NAIVE_HIGH_VOLTAGE"]

NAIVE_HIGH_VOLTAGE = 3.7
"""The static over-drive voltage analysed in Fig. 6a."""


def make_baseline(config: SystemConfig) -> Scheme:
    """The unmodified cross-point array baseline."""
    return Scheme(
        name="Base",
        regulator=StaticRegulator(config.cell.v_reset),
        description="static Vrst, V/2 biasing, Flip-N-Write",
    )


def make_naive_high_voltage(
    config: SystemConfig, voltage: float = NAIVE_HIGH_VOLTAGE
) -> Scheme:
    """Static over-drive: fast but destroys low-drop cell endurance."""
    if voltage <= config.cell.v_reset:
        raise ValueError(
            f"naive over-drive must exceed Vrst={config.cell.v_reset}, got {voltage}"
        )
    return Scheme(
        name=f"Static-{voltage:.2g}V",
        regulator=StaticRegulator(voltage),
        description="naive static over-drive (over-RESETs low-drop cells)",
    )
