"""Scheme abstractions for voltage-drop mitigation techniques.

A mitigation scheme is described along four orthogonal axes, mirroring
the paper's taxonomy (Table II):

* a **bias scheme** — how array terminals are driven (DSGB grounds,
  DSWD drivers, oracle taps);
* a **voltage regulator** — the WD voltage applied when resetting a
  given cell (static Vrst, DRVR row sections, UDRVR column levels);
* a **partitioner** — how the per-MAT RESET bit vector of a write is
  transformed into the concurrently-reset set (identity, PR's
  Algorithm 1, D-BL dummy resets);
* **system flags** — SCH hot-line scheduling and RBDL row-biased data
  layout, plus whether the scheme remains compatible with inter/intra
  line wear leveling (Table II's last column).

:class:`Scheme` bundles these with the chip-level overhead factors the
energy/area analysis consumes, and :class:`SchemeLatencyModel`
precomputes the (n_bits, row, column-group) RESET latency tables the
memory-system simulator looks up on every write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.crosspoint import BASELINE_BIAS, BiasScheme
from ..config import SystemConfig
from ..xpoint.vmap import ArrayIRModel, get_ir_model

__all__ = [
    "ChipOverheads",
    "VoltageRegulator",
    "StaticRegulator",
    "RowSectionRegulator",
    "MatrixRegulator",
    "WritePlan",
    "Partitioner",
    "IdentityPartitioner",
    "Scheme",
    "SchemeLatencyModel",
]


@dataclass(frozen=True)
class ChipOverheads:
    """Multiplicative chip-level cost factors relative to the baseline.

    The paper reports these as scalar percentages (§III-B, §IV-D);
    composite schemes add the deltas of their parts.
    """

    area_factor: float = 1.0
    leakage_factor: float = 1.0
    pump_area_factor: float = 1.0
    pump_leakage_factor: float = 1.0
    pump_charge_latency_factor: float = 1.0
    pump_charge_energy_factor: float = 1.0
    write_current_factor: float = 1.0  # peak RESET current vs baseline budget

    def combine(self, other: "ChipOverheads") -> "ChipOverheads":
        """Stack two overhead sets by adding their deltas."""

        def add(a: float, b: float) -> float:
            return 1.0 + (a - 1.0) + (b - 1.0)

        return ChipOverheads(
            area_factor=add(self.area_factor, other.area_factor),
            leakage_factor=add(self.leakage_factor, other.leakage_factor),
            pump_area_factor=add(self.pump_area_factor, other.pump_area_factor),
            pump_leakage_factor=add(
                self.pump_leakage_factor, other.pump_leakage_factor
            ),
            pump_charge_latency_factor=add(
                self.pump_charge_latency_factor, other.pump_charge_latency_factor
            ),
            pump_charge_energy_factor=add(
                self.pump_charge_energy_factor, other.pump_charge_energy_factor
            ),
            write_current_factor=max(
                self.write_current_factor, other.write_current_factor
            ),
        )


class VoltageRegulator:
    """Base regulator: the WD voltage used to reset cell (row, col)."""

    def matrix(self, model: ArrayIRModel) -> np.ndarray:
        """Full (A, A) applied-voltage matrix for map generation."""
        raise NotImplementedError

    def max_voltage(self, model: ArrayIRModel) -> float:
        """Highest level the charge pump must supply."""
        return float(self.matrix(model).max())


@dataclass(frozen=True)
class StaticRegulator(VoltageRegulator):
    """One fixed RESET voltage for the whole array (baseline)."""

    voltage: float | None = None  # None -> the configured Vrst

    def matrix(self, model: ArrayIRModel) -> np.ndarray:
        a = model.config.array.size
        v = self.voltage if self.voltage is not None else model.config.cell.v_reset
        return np.full((a, a), float(v))


@dataclass(frozen=True)
class RowSectionRegulator(VoltageRegulator):
    """DRVR: one Vrst level per row section (Fig. 7a).

    ``levels[s]`` is applied when the selected row falls in section
    ``s``; sections are equal row bands indexed by the row-address MSBs.
    """

    levels: tuple[float, ...]

    def matrix(self, model: ArrayIRModel) -> np.ndarray:
        a = model.config.array.size
        sections = len(self.levels)
        if a % sections:
            raise ValueError(f"{sections} sections do not divide array size {a}")
        per_row = np.repeat(np.asarray(self.levels, dtype=float), a // sections)
        return np.repeat(per_row[:, None], a, axis=1)


@dataclass(frozen=True)
class MatrixRegulator(VoltageRegulator):
    """UDRVR: per-row-section and per-column-group levels (Fig. 12a)."""

    row_levels: tuple[float, ...]  # DRVR-style BL compensation per section
    col_deltas: tuple[float, ...]  # per column-mux group reduction (<= 0)

    def matrix(self, model: ArrayIRModel) -> np.ndarray:
        a = model.config.array.size
        rows = np.repeat(
            np.asarray(self.row_levels, dtype=float), a // len(self.row_levels)
        )
        cols = np.repeat(
            np.asarray(self.col_deltas, dtype=float), a // len(self.col_deltas)
        )
        return rows[:, None] + cols[None, :]


@dataclass(frozen=True)
class WritePlan:
    """Outcome of a partitioner on one MAT's 8-bit write slice.

    ``reset_groups`` / ``set_groups`` are the column-mux group indices
    that perform a RESET / SET in this write (after any additions);
    ``extra_resets`` / ``extra_sets`` count operations added beyond the
    data-required ones (PR's benign pairs, D-BL's dummy resets).
    """

    reset_groups: tuple[int, ...]
    set_groups: tuple[int, ...]
    extra_resets: int = 0
    extra_sets: int = 0

    @property
    def n_concurrent_resets(self) -> int:
        return len(self.reset_groups)


class Partitioner:
    """Transforms a MAT's required RESET/SET bits into a write plan."""

    def plan(self, reset_bits: np.ndarray, set_bits: np.ndarray) -> WritePlan:
        """``reset_bits`` / ``set_bits`` are boolean masks of width 8."""
        raise NotImplementedError


class IdentityPartitioner(Partitioner):
    """No transformation: reset exactly the data-required bits."""

    def plan(self, reset_bits: np.ndarray, set_bits: np.ndarray) -> WritePlan:
        return WritePlan(
            reset_groups=tuple(int(i) for i in np.flatnonzero(reset_bits)),
            set_groups=tuple(int(i) for i in np.flatnonzero(set_bits)),
        )


@dataclass(frozen=True)
class Scheme:
    """A complete voltage-drop mitigation configuration."""

    name: str
    bias: BiasScheme = BASELINE_BIAS
    regulator: VoltageRegulator = field(default_factory=StaticRegulator)
    partitioner: Partitioner = field(default_factory=IdentityPartitioner)
    overheads: ChipOverheads = field(default_factory=ChipOverheads)
    scheduling: bool = False  # SCH [13,14]: hot lines to fast rows
    row_biased_layout: bool = False  # RBDL [15]
    wear_leveling_compatible: bool = True  # Table II last column
    reset_before_set: bool = False  # PR runs the RESET phase first
    sneak_scale: float = 1.0  # RBDL: leakage relative to all-LRS worst case
    # Extra line writes per demand write: wear-leveling swap migrations
    # for compatible schemes; SCH page migrations plus RBDL row-shift
    # maintenance otherwise ("they introduce more writes", §III-C).
    maintenance_write_rate: float = 0.02
    description: str = ""

    def effective_config(self, config: SystemConfig) -> SystemConfig:
        """Array configuration as seen under this scheme's data layout."""
        if self.sneak_scale == 1.0:
            return config
        return config.with_array(
            sneak_boost=config.array.sneak_boost * self.sneak_scale
        )


WRITE_RETRY_LATENCY = 10e-6
"""Latency charged for a RESET whose effective voltage falls below the
write-failure floor [26].  Real controllers program-and-verify: a failed
pulse is retried with boosted bias, bounding the cost instead of hanging
the bank forever.  Only design points outside the paper's baseline
(10 nm wires, Kr = 500 selectors) ever hit this."""


class SchemeLatencyModel:
    """Precomputed RESET-latency lookup tables for one (config, scheme).

    ``table[n-1, row, group]`` is the RESET latency of the worst cell
    position within column group ``group`` on ``row`` when ``n`` cells
    are reset concurrently in the MAT.  The memory simulator reduces a
    write to ``max`` over its reset groups.  Write-failing operating
    points are charged :data:`WRITE_RETRY_LATENCY` instead of infinity.
    """

    def __init__(
        self, config: SystemConfig, scheme: Scheme, context=None
    ) -> None:
        self.config = scheme.effective_config(config)
        self.scheme = scheme
        # An engine context supplies its solver-threaded, profile-cached
        # nominal model; latency tables are a design-time calibration, so
        # the model is fault-free either way.
        if context is not None:
            self.ir_model = context.nominal_ir_model(self.config)
        else:
            self.ir_model = get_ir_model(self.config)
        a = config.array.size
        width = config.array.data_width
        v_matrix = scheme.regulator.matrix(self.ir_model)
        tables = []
        for n_bits in range(1, width + 1):
            latency = self.ir_model.latency_map(v_matrix, n_bits, scheme.bias)
            # Worst column position within each group: intra-line wear
            # leveling rotates data over all of a group's 64 BLs, so the
            # slowest position bounds the group (under DSGB that is the
            # group's centre, not its far edge).
            per_group = latency.reshape(a, width, a // width).max(axis=2)
            tables.append(np.minimum(per_group, WRITE_RETRY_LATENCY))
        self.table = np.stack(tables)  # (width, A, width)
        set_energy = config.cell.e_set_per_bit
        self.set_latency = set_energy / (config.cell.v_set * config.cell.i_set)

    def reset_phase_latency(self, row: int, reset_groups: tuple[int, ...]) -> float:
        """Latency (s) of the RESET phase of one write on one MAT."""
        if not reset_groups:
            return 0.0
        n = len(reset_groups)
        return float(self.table[n - 1, row, list(reset_groups)].max())

    def write_latency(self, row: int, plan: WritePlan) -> float:
        """Full write latency: SET phase + RESET phase (either order)."""
        reset = self.reset_phase_latency(row, plan.reset_groups)
        set_phase = self.set_latency if plan.set_groups else 0.0
        return reset + set_phase

    def worst_case_write_latency(self) -> float:
        """Worst write latency over all 8-bit RESET patterns and rows.

        Enumerates every possible required-RESET mask, runs it through
        the scheme's partitioner, and takes the slowest resulting plan on
        the slowest row.  This is the array RESET budget the paper quotes
        (2.3 us for the 512x512 baseline, 71 ns under UDRVR+PR).
        """
        width = self.config.array.data_width
        worst = 0.0
        worst_rows = self._worst_rows()
        for pattern in range(1, 1 << width):
            reset_bits = np.array(
                [(pattern >> i) & 1 for i in range(width)], dtype=bool
            )
            plan = self.scheme.partitioner.plan(reset_bits, ~reset_bits)
            for row in worst_rows:
                worst = max(worst, self.write_latency(int(row), plan))
        return worst

    def _worst_rows(self) -> np.ndarray:
        """Rows that can host the slowest RESET (section boundaries)."""
        a = self.config.array.size
        sections = self.config.array.drvr_sections
        boundaries = np.arange(sections) * (a // sections)
        return np.unique(np.concatenate([boundaries, boundaries + a // sections - 1]))
