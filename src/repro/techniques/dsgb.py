"""Double-sided ground biasing (DSGB [1], Table II).

A second copy of the row decoder and WL drivers lets both ends of the
selected word-line connect to ground during RESETs, roughly halving the
effective WL resistance.  Costs +29% chip area and +31% chip leakage
(§III-B).
"""

from __future__ import annotations

from ..circuit.crosspoint import BiasScheme
from ..config import SystemConfig
from .base import ChipOverheads, Scheme

__all__ = ["DSGB_BIAS", "DSGB_OVERHEADS", "make_dsgb"]

DSGB_BIAS = BiasScheme(name="dsgb", wl_ground_both_ends=True)
DSGB_OVERHEADS = ChipOverheads(area_factor=1.29, leakage_factor=1.31)


def make_dsgb(config: SystemConfig) -> Scheme:
    """Double-sided ground biasing."""
    return Scheme(
        name="DSGB",
        bias=DSGB_BIAS,
        overheads=DSGB_OVERHEADS,
        description="selected WL grounded at both ends (extra row decoder)",
    )
