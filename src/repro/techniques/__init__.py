"""Voltage-drop mitigation techniques: the paper's DRVR / PR / UDRVR and
every prior scheme it compares against (Table II)."""

from .base import (
    ChipOverheads,
    IdentityPartitioner,
    MatrixRegulator,
    Partitioner,
    RowSectionRegulator,
    Scheme,
    SchemeLatencyModel,
    StaticRegulator,
    VoltageRegulator,
    WritePlan,
)
from .baseline import make_baseline, make_naive_high_voltage
from .drvr import drvr_levels, make_drvr
from .dsgb import make_dsgb
from .dswd import make_dswd
from .dummy_bl import DummyBitlinePartitioner, make_dbl
from .oracle import make_oracle, oracle_bias
from .partition_reset import PartitionResetPartitioner
from .rbdl import make_rbdl
from .sch import make_sch, scheduled_row
from .stacks import make_drvr_pr, make_hard, make_hard_sys, standard_schemes
from .udrvr import make_udrvr_high_voltage, make_udrvr_pr, udrvr_col_deltas

__all__ = [
    "ChipOverheads",
    "IdentityPartitioner",
    "MatrixRegulator",
    "Partitioner",
    "RowSectionRegulator",
    "Scheme",
    "SchemeLatencyModel",
    "StaticRegulator",
    "VoltageRegulator",
    "WritePlan",
    "make_baseline",
    "make_naive_high_voltage",
    "drvr_levels",
    "make_drvr",
    "make_dsgb",
    "make_dswd",
    "DummyBitlinePartitioner",
    "make_dbl",
    "make_oracle",
    "oracle_bias",
    "PartitionResetPartitioner",
    "make_rbdl",
    "make_sch",
    "scheduled_row",
    "make_drvr_pr",
    "make_hard",
    "make_hard_sys",
    "standard_schemes",
    "make_udrvr_high_voltage",
    "make_udrvr_pr",
    "udrvr_col_deltas",
]
