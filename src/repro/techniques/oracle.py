"""Oracle configurations ``ora-m×m`` (§III-C, §VI).

``ora-m×m`` makes a full-size array behave, drop-wise, like an m×m
array: ideal drive contacts are assumed at the first cell of every
m-cell section of the selected BL (at Vrst) and ideal grounds at the
first cell of every m-cell section of the selected WL.  It is the
normalisation reference of Fig. 5c and Fig. 15 (``ora-64×64``) and
physically corresponds to building the memory out of m×m arrays, which
would cost +76% chip area for m = 64 (§VI).
"""

from __future__ import annotations

from ..circuit.crosspoint import BiasScheme
from ..config import SystemConfig
from .base import Scheme

__all__ = ["oracle_bias", "make_oracle"]


def oracle_bias(m: int) -> BiasScheme:
    """Bias scheme with ideal taps every ``m`` cells on both line types."""
    if m < 1:
        raise ValueError(f"oracle section size must be >= 1, got {m}")
    return BiasScheme(name=f"ora-{m}x{m}", wl_tap_every=m, bl_tap_every=m)


def make_oracle(config: SystemConfig, m: int) -> Scheme:
    """The ``ora-m×m`` oracle scheme."""
    if config.array.size % m:
        raise ValueError(
            f"oracle section {m} must divide the array size {config.array.size}"
        )
    return Scheme(
        name=f"ora-{m}x{m}",
        bias=oracle_bias(m),
        description=f"oracle: drop of an {m}x{m} array inside the full array",
    )
