"""Dynamic RESET voltage regulation (DRVR, §IV-A).

DRVR splits the rows of a MAT into sections (eight by default, selected
by the three row-address MSBs) and supplies a higher RESET voltage to
sections farther from the write driver, compensating their bit-line
voltage drop.  The level of section 0 stays at the nominal ``Vrst`` so
the no-drop bottom-left cells keep their baseline endurance, and each
higher section's level is raised by the BL drop at the section's first
row — leaving only the small (<0.1 V) intra-section variation of
Fig. 7b.

Because the BL drop itself grows slightly with the applied voltage
(half-select leakage rises), the levels are found by fixed-point
iteration on the calibrated IR model.
"""

from __future__ import annotations

import numpy as np

from ..config import SystemConfig
from ..xpoint.vmap import ArrayIRModel, get_ir_model
from .base import ChipOverheads, RowSectionRegulator, Scheme

__all__ = ["drvr_levels", "make_drvr", "DRVR_OVERHEADS"]

# §IV-D: the DRVR/UDRVR pump needs one extra stage (3 V -> 3.66 V) plus
# the rst-dec decoders; chip-level cost is negligible (66.2 um^2), the
# pump grows by a third.
DRVR_OVERHEADS = ChipOverheads(
    pump_area_factor=1.33,
    pump_leakage_factor=1.302,
    pump_charge_latency_factor=1.048,
    pump_charge_energy_factor=1.063,
)


def drvr_levels(
    config: SystemConfig,
    sections: int | None = None,
    iterations: int = 4,
    model: "ArrayIRModel | None" = None,
) -> tuple[float, ...]:
    """Compute the per-section Vrst levels (lowest section first).

    Level ``s`` compensates the BL drop at the first row of section
    ``s`` so that every section starts at the nominal effective voltage;
    fixed-point iteration converges in two or three rounds because the
    leakage growth with voltage is mild.

    ``model`` supplies the calibrated IR model for ``config`` (an engine
    context passes its solver-threaded, profile-cached instance); by
    default the shared module-level model is used.  Levels are a
    design-time calibration, so the model must be fault-free.
    """
    if model is None:
        model = get_ir_model(config)
    a = config.array.size
    if sections is None:
        sections = config.array.drvr_sections
    if sections < 1 or a % sections:
        raise ValueError(f"{sections} sections do not divide array size {a}")
    rows = np.arange(sections) * (a // sections)
    v_rst = config.cell.v_reset
    levels = np.full(sections, v_rst)
    for _ in range(iterations):
        new_levels = []
        for section, row in enumerate(rows):
            profile = model.bl_drop_profile(float(levels[section]))
            new_levels.append(v_rst + float(profile[row]))
        levels = np.asarray(new_levels)
    # The VRA resistor chain generates monotonically increasing levels;
    # enforce that against sub-mV interpolation jitter on small arrays.
    levels = np.maximum.accumulate(levels)
    return tuple(float(v) for v in levels)


def make_drvr(
    config: SystemConfig,
    sections: int | None = None,
    model: "ArrayIRModel | None" = None,
) -> Scheme:
    """Build the DRVR scheme for a configuration."""
    levels = drvr_levels(config, sections, model=model)
    return Scheme(
        name="DRVR",
        regulator=RowSectionRegulator(levels),
        overheads=DRVR_OVERHEADS,
        description=(
            f"dynamic RESET voltage regulation, {len(levels)} levels "
            f"{min(levels):.2f}-{max(levels):.2f} V"
        ),
    )
