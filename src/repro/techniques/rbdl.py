"""Row-biased data layout (RBDL [15], Table II).

The sneak current — and therefore the voltage drop — of a bit-line
depends on how many LRS (low-resistance, logic '1') cells hang off it.
RBDL row-shifts data so LRS cells spread evenly over all BLs, lowering
the worst BL's drop from the all-LRS worst case toward the average-data
case.  The catch (§III-B): intra-line wear leveling randomly shifts the
write-intensive words of a line across the WL, destroying the layout —
so RBDL is also incompatible with wear leveling.

We model RBDL as a reduction of the worst-case half-select leakage: the
baseline analysis pessimistically assumes every cell is LRS
(``sneak_boost`` calibrated to that case); with RBDL the expected LRS
share on the worst BL drops to ~50-60%, scaling the leakage by
``RBDL_SNEAK_SCALE``.
"""

from __future__ import annotations

from ..config import SystemConfig
from .base import Scheme

__all__ = ["RBDL_SNEAK_SCALE", "make_rbdl", "rbdl_config"]

RBDL_SNEAK_SCALE = 0.6
"""Worst-BL leakage relative to the all-LRS assumption under RBDL."""


def rbdl_config(config: SystemConfig) -> SystemConfig:
    """Derive the array configuration seen under RBDL's data layout."""
    return config.with_array(
        sneak_boost=config.array.sneak_boost * RBDL_SNEAK_SCALE
    )


def make_rbdl(config: SystemConfig) -> Scheme:
    """Row-biased data layout (incompatible with intra-line wear leveling)."""
    return Scheme(
        name="RBDL",
        row_biased_layout=True,
        wear_leveling_compatible=False,
        sneak_scale=RBDL_SNEAK_SCALE,
        maintenance_write_rate=0.1,
        description="LRS cells spread evenly over BLs by row shifting",
    )
