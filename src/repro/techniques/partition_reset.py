"""Partition RESET (PR) — Algorithm 1 of the paper.

PR inspects the Flip-N-Write RESET vector of each MAT's 8-bit write
slice.  If no RESET is required among the last five bits (column groups
3..7), the slice is left alone: the first three BL groups sit close to
the row decoder, suffer little WL drop, and reset fast.  Otherwise PR
walks the four 2-bit groups from the group containing the last required
RESET down to group 0, and inserts a benign RESET (immediately
compensated by a SET of the same cell in the following SET phase) into
every 2-bit group that has none — so the write resets roughly one bit
per 2-bit group, partitioning the array into ~4 equivalent circuits,
the sweet spot of Fig. 11a.

Because PR must know the final bit values before the RESET phase, it
runs the RESET phase first and the SET phase second (Fig. 10), unlike
the baseline SET-then-RESET order.
"""

from __future__ import annotations

import numpy as np

from .base import Partitioner, WritePlan

__all__ = ["PartitionResetPartitioner", "PR_TRIGGER_START", "PR_GROUP_SIZE"]

PR_TRIGGER_START = 3
"""First bit index of the trigger window: a RESET at or beyond this
column group activates PR for the slice (the paper's "last 5 bits")."""

PR_GROUP_SIZE = 2
"""Bits per partition group; PR guarantees one RESET per group."""


class PartitionResetPartitioner(Partitioner):
    """Algorithm 1: decide how many and which cells to reset."""

    def __init__(
        self,
        trigger_start: int = PR_TRIGGER_START,
        group_size: int = PR_GROUP_SIZE,
    ) -> None:
        if trigger_start < 0:
            raise ValueError(f"trigger_start must be >= 0, got {trigger_start}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.trigger_start = trigger_start
        self.group_size = group_size

    def plan(self, reset_bits: np.ndarray, set_bits: np.ndarray) -> WritePlan:
        reset_bits = np.asarray(reset_bits, dtype=bool).copy()
        set_bits = np.asarray(set_bits, dtype=bool).copy()
        width = reset_bits.size
        if set_bits.size != width:
            raise ValueError("reset and set masks must have equal width")
        if np.any(reset_bits & set_bits):
            raise ValueError("a bit cannot be both RESET and SET in one write")

        extra_resets = 0
        extra_sets = 0
        required = np.flatnonzero(reset_bits)
        if required.size and required[-1] >= self.trigger_start:
            # Walk 2-bit groups from the last required RESET towards bit 0
            # (Algorithm 1 lines 4-8): L rounded down to its group start.
            last = int(required[-1])
            group_start = last - last % self.group_size
            for start in range(group_start, -1, -self.group_size):
                group = slice(start, start + self.group_size)
                if not reset_bits[group].any():
                    # Add a benign RESET on the group's last bit, offset by
                    # a SET of the same cell in the SET phase (lines 7-8).
                    benign = min(start + self.group_size - 1, width - 1)
                    reset_bits[benign] = True
                    extra_resets += 1
                    if not set_bits[benign]:
                        # The cell was not being SET anyway; the
                        # compensating SET is an extra operation too.
                        set_bits[benign] = True
                        extra_sets += 1

        reset_groups = tuple(int(i) for i in np.flatnonzero(reset_bits))
        set_groups = tuple(int(i) for i in np.flatnonzero(set_bits))
        return WritePlan(
            reset_groups=reset_groups,
            set_groups=set_groups,
            extra_resets=extra_resets,
            extra_sets=extra_sets,
        )
