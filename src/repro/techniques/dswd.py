"""Double-sided write drivers (DSWD [8], Table II).

An extra copy of the column multiplexers and write drivers lets the
selected bit-line be driven from both ends, halving the effective BL
resistance seen by the selected cell.  Costs +19% chip area and +22%
chip leakage (§III-B).
"""

from __future__ import annotations

from ..circuit.crosspoint import BiasScheme
from ..config import SystemConfig
from .base import ChipOverheads, Scheme

__all__ = ["DSWD_BIAS", "DSWD_OVERHEADS", "make_dswd"]

DSWD_BIAS = BiasScheme(name="dswd", bl_drive_both_ends=True)
DSWD_OVERHEADS = ChipOverheads(area_factor=1.19, leakage_factor=1.22)


def make_dswd(config: SystemConfig) -> Scheme:
    """Double-sided write drivers."""
    return Scheme(
        name="DSWD",
        bias=DSWD_BIAS,
        overheads=DSWD_OVERHEADS,
        description="selected BL driven from both ends (extra WDs)",
    )
