"""Human-readable rendering of a profile snapshot.

``python -m repro <exp> --profile`` prints :func:`format_profile`;
the same plain-dict form (:meth:`Snapshot.to_plain`) is what ``--json``
and ``scripts/bench.py`` embed, so the table and the machine-readable
block always agree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .collector import Snapshot

__all__ = ["derived_ratios", "format_profile"]

#: Ratio rows rendered under "derived": name -> (numerator, denominator).
#: Factorisations per solve is the chord-Newton headline figure — the
#: reference backend sits near its iteration count (~8) while the
#: accelerated backends target <= 2 once warm.
_RATIOS: "dict[str, tuple[str, str]]" = {
    "solver.factorisations_per_solve": (
        "solver.factorisations",
        "solver.solves",
    ),
    "solver.newton_iterations_per_solve": (
        "solver.newton_iterations",
        "solver.solves",
    ),
}


def derived_ratios(counters: "dict[str, float]") -> "dict[str, float]":
    """Ratio metrics computable from raw counters (see :data:`_RATIOS`).

    A ratio is emitted only when its denominator is present and nonzero,
    so profiles from runs that never solved anything stay unchanged.
    """
    ratios: dict[str, float] = {}
    for name, (numerator, denominator) in _RATIOS.items():
        bottom = counters.get(denominator)
        if bottom:
            ratios[name] = counters.get(numerator, 0) / bottom
    return ratios


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def format_profile(snapshot: "Snapshot | dict") -> str:
    """Render counters, gauges and span timings as aligned tables.

    Accepts a live :class:`~repro.obs.collector.Snapshot` or its
    :meth:`~repro.obs.collector.Snapshot.to_plain` dictionary form.
    """
    # Imported lazily: analysis pulls in the experiment drivers, which
    # import the engine, which imports obs — a module-level import here
    # would close that cycle during interpreter start-up.
    from ..analysis.report import format_table

    plain = snapshot if isinstance(snapshot, dict) else snapshot.to_plain()
    sections = ["== profile =="]
    spans = plain.get("spans") or {}
    if spans:
        rows = [
            [
                name,
                stat["count"],
                _fmt_seconds(stat["total_s"]),
                _fmt_seconds(stat["mean_s"]),
                _fmt_seconds(stat["min_s"]),
                _fmt_seconds(stat["max_s"]),
            ]
            for name, stat in sorted(spans.items())
        ]
        sections.append(
            format_table(
                ("span", "count", "total", "mean", "min", "max"),
                rows,
                title="spans",
            )
        )
    counters = plain.get("counters") or {}
    if counters:
        sections.append(
            format_table(
                ("counter", "value"),
                [[name, value] for name, value in sorted(counters.items())],
                title="counters",
            )
        )
        ratios = derived_ratios(counters)
        if ratios:
            sections.append(
                format_table(
                    ("metric", "value"),
                    [
                        [name, f"{value:.2f}"]
                        for name, value in sorted(ratios.items())
                    ],
                    title="derived",
                )
            )
    gauges = plain.get("gauges") or {}
    if gauges:
        sections.append(
            format_table(
                ("gauge", "value"),
                [[name, value] for name, value in sorted(gauges.items())],
                title="gauges",
            )
        )
    if len(sections) == 1:
        sections.append("(no observations recorded)")
    return "\n\n".join(sections)
