"""Human-readable rendering of a profile snapshot.

``python -m repro <exp> --profile`` prints :func:`format_profile`;
the same plain-dict form (:meth:`Snapshot.to_plain`) is what ``--json``
and ``scripts/bench.py`` embed, so the table and the machine-readable
block always agree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .collector import Snapshot

__all__ = ["format_profile"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def format_profile(snapshot: "Snapshot | dict") -> str:
    """Render counters, gauges and span timings as aligned tables.

    Accepts a live :class:`~repro.obs.collector.Snapshot` or its
    :meth:`~repro.obs.collector.Snapshot.to_plain` dictionary form.
    """
    # Imported lazily: analysis pulls in the experiment drivers, which
    # import the engine, which imports obs — a module-level import here
    # would close that cycle during interpreter start-up.
    from ..analysis.report import format_table

    plain = snapshot if isinstance(snapshot, dict) else snapshot.to_plain()
    sections = ["== profile =="]
    spans = plain.get("spans") or {}
    if spans:
        rows = [
            [
                name,
                stat["count"],
                _fmt_seconds(stat["total_s"]),
                _fmt_seconds(stat["mean_s"]),
                _fmt_seconds(stat["min_s"]),
                _fmt_seconds(stat["max_s"]),
            ]
            for name, stat in sorted(spans.items())
        ]
        sections.append(
            format_table(
                ("span", "count", "total", "mean", "min", "max"),
                rows,
                title="spans",
            )
        )
    counters = plain.get("counters") or {}
    if counters:
        sections.append(
            format_table(
                ("counter", "value"),
                [[name, value] for name, value in sorted(counters.items())],
                title="counters",
            )
        )
    gauges = plain.get("gauges") or {}
    if gauges:
        sections.append(
            format_table(
                ("gauge", "value"),
                [[name, value] for name, value in sorted(gauges.items())],
                title="gauges",
            )
        )
    if len(sections) == 1:
        sections.append("(no observations recorded)")
    return "\n\n".join(sections)
