"""Counters, gauges and hierarchical tracing spans.

The collector is *opt-in*: module-level helpers (:func:`count`,
:func:`gauge`, :func:`span`) are no-ops — one ``None`` check, no
allocation — until a :class:`Collector` is activated, so instrumented
hot paths cost nothing in normal runs.  Activation is process-local;
worker processes of a :class:`~repro.engine.executor.ParallelExecutor`
run their own collector per task and ship a picklable
:class:`Snapshot` back for the parent to :meth:`Collector.merge`.

Spans nest: a span opened while another is active is recorded under the
joined path (``"experiment[name=fig04]/solve.reduced"``), so the
profile report shows where time inside an experiment actually went.
Timings use the monotonic :func:`time.perf_counter` clock.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Collector",
    "Snapshot",
    "SpanStat",
    "activate",
    "active_collector",
    "collecting",
    "count",
    "deactivate",
    "gauge",
    "span",
]


@dataclass
class SpanStat:
    """Aggregated wall-clock statistics of one span path (seconds)."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        self.min_s = min(self.min_s, elapsed_s)
        self.max_s = max(self.max_s, elapsed_s)

    def merge(self, other: "SpanStat") -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_plain(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


@dataclass
class Snapshot:
    """A picklable point-in-time dump of a collector's state.

    Snapshots cross the process-pool boundary (plain dicts of scalars
    and :class:`SpanStat` records) and merge into a parent collector.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    spans: dict[str, SpanStat] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.spans)

    def to_plain(self) -> dict:
        """JSON-exportable document (what ``--json`` / bench embed)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "spans": {
                name: stat.to_plain()
                for name, stat in sorted(self.spans.items())
            },
        }


class _Span:
    """One live span: a re-entrant-safe context manager."""

    __slots__ = ("_collector", "_name", "_path", "_start")

    def __init__(self, collector: "Collector", name: str) -> None:
        self._collector = collector
        self._name = name
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "_Span":
        stack = self._collector._stack
        self._path = (
            f"{stack[-1]}/{self._name}" if stack else self._name
        )
        stack.append(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._collector._stack
        if stack and stack[-1] == self._path:
            stack.pop()
        self._collector.record_span(self._path, elapsed)


class _NoopSpan:
    """Shared do-nothing span handed out while collection is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


def _span_name(name: str, tags: dict) -> str:
    if not tags:
        return name
    rendered = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{name}[{rendered}]"


class Collector:
    """Mutable store of counters, gauges and span timings.

    Instances are cheap, picklable (the live span stack is transient
    state and reset on unpickle is unnecessary — it is plain data) and
    single-process; cross-process aggregation goes through
    :meth:`snapshot` / :meth:`merge`.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.spans: dict[str, SpanStat] = {}
        self._stack: list[str] = []

    # -- recording --------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def span(self, name: str, /, **tags) -> _Span:
        return _Span(self, _span_name(name, tags))

    def record_span(self, path: str, elapsed_s: float) -> None:
        stat = self.spans.get(path)
        if stat is None:
            stat = self.spans[path] = SpanStat()
        stat.add(elapsed_s)

    # -- aggregation ------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A detached copy safe to pickle, merge, or export."""
        return Snapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            spans={
                name: SpanStat(s.count, s.total_s, s.min_s, s.max_s)
                for name, s in self.spans.items()
            },
        )

    def merge(self, other: "Snapshot | Collector") -> None:
        """Fold another collector's observations into this one."""
        for name, n in other.counters.items():
            self.count(name, n)
        # Last write wins for gauges, matching single-process semantics.
        self.gauges.update(other.gauges)
        for name, stat in other.spans.items():
            mine = self.spans.get(name)
            if mine is None:
                self.spans[name] = SpanStat(
                    stat.count, stat.total_s, stat.min_s, stat.max_s
                )
            else:
                mine.merge(stat)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.spans.clear()
        self._stack.clear()


#: The active collector is *thread-local* (None = collection disabled).
#: Single-threaded code sees the historical process-local behaviour;
#: the service's compute plane runs one request per worker thread, each
#: under its own collector, without the activations clobbering each
#: other (a collector instance itself is single-writer: only the thread
#: that activated it records into it, and aggregation goes through
#: snapshot()/merge()).
_STATE = threading.local()


def active_collector() -> Collector | None:
    """The collector currently receiving observations, if any."""
    return getattr(_STATE, "active", None)


def activate(collector: Collector | None = None) -> Collector:
    """Route subsequent :func:`count` / :func:`span` calls somewhere."""
    _STATE.active = collector if collector is not None else Collector()
    return _STATE.active


def deactivate() -> None:
    """Return to zero-overhead no-op mode."""
    _STATE.active = None


@contextmanager
def collecting(collector: Collector | None = None):
    """Activate ``collector`` for the duration of a ``with`` block.

    ``collecting(None)`` creates a fresh collector; either way the
    previously active collector (or disabled state) is restored on
    exit, so instrumented blocks nest safely.  Activation is per
    thread: a worker thread entering this block never redirects other
    threads' observations.
    """
    previous = getattr(_STATE, "active", None)
    _STATE.active = collector if collector is not None else Collector()
    try:
        yield _STATE.active
    finally:
        _STATE.active = previous


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the active collector (no-op when disabled)."""
    collector = getattr(_STATE, "active", None)
    if collector is not None:
        collector.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the active collector (no-op when disabled)."""
    collector = getattr(_STATE, "active", None)
    if collector is not None:
        collector.gauge(name, value)


def span(name: str, /, **tags) -> "_Span | _NoopSpan":
    """A timing span context manager (shared no-op when disabled).

    The span name is positional-only so a tag may itself be called
    ``name`` (``span("experiment", name="fig04")``).
    """
    collector = getattr(_STATE, "active", None)
    if collector is None:
        return _NOOP_SPAN
    return collector.span(name, **tags)
