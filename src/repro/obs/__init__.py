"""Lightweight observability: tracing spans, counters, profile reports.

Instrumented call sites use the module-level helpers::

    from .. import obs

    obs.count("model_cache.hit")
    with obs.span("solve.reduced", array=512):
        ...

These are no-ops (a single ``None`` check) until a
:class:`~repro.obs.collector.Collector` is activated — typically by
:func:`repro.engine.runner.run_experiment` when the
:class:`~repro.engine.context.RunContext` carries one (the CLI's
``--profile``).  Worker processes aggregate their own observations into
picklable :class:`~repro.obs.collector.Snapshot` records that executors
merge back into the parent's collector.
"""

from .collector import (
    Collector,
    Snapshot,
    SpanStat,
    activate,
    active_collector,
    collecting,
    count,
    deactivate,
    gauge,
    span,
)
from .report import format_profile

__all__ = [
    "Collector",
    "Snapshot",
    "SpanStat",
    "activate",
    "active_collector",
    "collecting",
    "count",
    "deactivate",
    "format_profile",
    "gauge",
    "span",
]
