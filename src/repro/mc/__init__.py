"""Monte Carlo variability engine (ensembles, bands, surrogate).

See ``docs/montecarlo.md`` for the seeding scheme, the amortization
model behind ``solve_ensemble``, and the surrogate's validity region.
"""

from .ensemble import (
    EnsembleResult,
    InstanceResult,
    PercentileBand,
    run_ensemble,
)
from .experiment import DEFAULT_MC_RATES, DEFAULT_MC_SAMPLES, mc_sweep
from .surrogate import DEFAULT_ERROR_BUDGET, LatencySurrogate, SurrogatePoint

__all__ = [
    "DEFAULT_ERROR_BUDGET",
    "DEFAULT_MC_RATES",
    "DEFAULT_MC_SAMPLES",
    "EnsembleResult",
    "InstanceResult",
    "LatencySurrogate",
    "PercentileBand",
    "SurrogatePoint",
    "mc_sweep",
    "run_ensemble",
]
