"""The ``mc-sweep`` experiment: percentile bands over fault rates.

For each fault rate a master :class:`~repro.faults.model.FaultModel`
(the fault-sweep's composite ``at_rate`` profile, with array-to-array
droop spread) seeds a K-instance Monte Carlo ensemble; the payload
reports p1/p50/p99 latency and lifetime-at-risk bands per rate, plus
per-instance rows under ``mc_instances`` in the exact shape the sweep
store ingests — one row per (config, seed, instance), so
``repro sweep query`` can re-aggregate bands across runs.

``samples`` is a declared experiment parameter: the CLI's
``--mc-samples`` flag reaches the driver (and the disk-cache key)
through the engine's params channel.
"""

from __future__ import annotations

from ..config import SystemConfig, default_config
from ..engine.context import RunContext
from ..engine.registry import experiment
from ..faults.model import FaultModel
from .ensemble import run_ensemble

__all__ = ["mc_sweep", "DEFAULT_MC_RATES", "DEFAULT_MC_SAMPLES", "MC_SCHEME"]

#: Fault rates the ensemble sweep steps through (a healthy-array
#: control plus the fault-sweep's two stressed points).
DEFAULT_MC_RATES = (0.0, 1e-3, 1e-2)

#: Ensemble size per rate; override via ``--mc-samples``.
DEFAULT_MC_SAMPLES = 32

#: The scheme the ensemble models (static nominal Vrst drive).
MC_SCHEME = "Base"


@experiment(
    name="mc-sweep",
    output_keys=("samples", "rates", "bands", "mc_instances"),
    params=("samples",),
)
def mc_sweep(
    config: SystemConfig | None = None,
    context: RunContext | None = None,
    rates: tuple[float, ...] = DEFAULT_MC_RATES,
    samples: int = DEFAULT_MC_SAMPLES,
) -> dict:
    """Monte Carlo variability: latency/lifetime percentile bands by rate."""
    if context is None:
        context = RunContext(config=config or default_config())
    # One master seed for the whole sweep, derived through the context's
    # token scheme; each ensemble re-derives per-instance seeds from it
    # via FaultModel.for_instance, so rates never share instance draws
    # with each other or with the fault-sweep's seed ladder.
    seed = context.seed_for(43, "mc-sweep")
    bands: dict[str, dict] = {}
    mc_instances: dict[str, dict] = {}
    for rate in rates:
        master = FaultModel.at_rate(rate, seed=seed)
        result = run_ensemble(context, samples=samples, faults=master)
        bands[f"{rate:g}"] = {
            "latency_us": result.latency_us.as_dict(),
            "lifetime_at_risk": result.lifetime_at_risk.as_dict(),
            "fail_fraction": result.fail_fraction.as_dict(),
            "quanta_solved": result.quanta_solved,
        }
        for inst in result.instances:
            key = f"{MC_SCHEME} @ {rate:g} # {inst.instance}"
            mc_instances[key] = {
                "latency_us": inst.latency_us,
                "min_endurance": inst.min_endurance,
                "fail_fraction": inst.fail_fraction,
                "stuck_fraction": inst.stuck_fraction,
            }
    return {
        "samples": samples,
        "rates": list(rates),
        "bands": bands,
        "mc_instances": mc_instances,
    }
