"""Interpolation surrogate over solved (voltage, fault-rate) regions.

A Monte Carlo ensemble is cheap *per instance* but still runs Newton
for every new voltage quantum; design-space exploration asks the same
(Vrst, fault-rate) neighbourhoods over and over.  The surrogate fits a
bilinear interpolation model over a grid of exact ensemble solves —
each grid point persisted through the engine's
:class:`~repro.engine.cache.ProfileStore`, so a refit in a later run
loads its corners in O(1) instead of re-solving — and answers queries
*inside* the fitted hull without touching Newton at all.

Latency is interpolated in log space: Equation 1 makes log-latency
nearly linear in voltage (``log Trst = log beta - k * Veff`` with the
IR drop varying slowly in Vrst), so bilinear-in-log error stays well
inside :data:`DEFAULT_ERROR_BUDGET` on held-out points (locked by
``tests/mc/test_parity.py``).  Validity is self-monitored: every
``spot_check_every``-th in-hull query re-runs the exact ensemble and
records the worst relative error on the ``mc.surrogate.rel_error``
gauge; out-of-hull queries fall back to the exact path and count as
misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .. import obs
from ..faults.model import FaultModel
from .ensemble import run_ensemble

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.context import RunContext

__all__ = ["LatencySurrogate", "SurrogatePoint", "DEFAULT_ERROR_BUDGET"]

#: Declared relative-error budget of in-hull predictions against the
#: exact ensemble (the parity suite holds held-out spot checks to it).
DEFAULT_ERROR_BUDGET = 0.10

#: Metrics the surrogate models (log-interpolated).
_METRICS = ("latency_us_p50", "latency_us_p99", "lifetime_p1")

#: Base seed of the surrogate's master fault models (mixed through the
#: context's token scheme; distinct from mc-sweep's 43).
_SURROGATE_SEED_BASE = 47


@dataclass(frozen=True)
class SurrogatePoint:
    """One exactly-solved grid corner."""

    v_applied: float
    rate: float
    latency_us_p50: float
    latency_us_p99: float
    lifetime_p1: float

    def metric(self, name: str) -> float:
        return float(getattr(self, name))


class LatencySurrogate:
    """Bilinear log-space surrogate over an exact ensemble grid.

    Build via :meth:`fit`.  ``predict`` answers in O(1) inside the
    fitted (voltage, rate) hull; outside it, the exact ensemble runs
    and the query is counted as a miss, so callers always get a valid
    answer and the hit/miss counters expose how often the fitted
    region actually covers the workload.
    """

    def __init__(
        self,
        context: "RunContext",
        voltages: np.ndarray,
        rates: np.ndarray,
        points: "dict[tuple[int, int], SurrogatePoint]",
        samples: int,
        error_budget: float = DEFAULT_ERROR_BUDGET,
        spot_check_every: int = 8,
    ) -> None:
        self.context = context
        self.voltages = voltages
        self.rates = rates
        self.points = points
        self.samples = samples
        self.error_budget = error_budget
        self.spot_check_every = max(0, spot_check_every)
        self.last_rel_error = 0.0
        self._in_hull_queries = 0
        # Log-space metric grids, shape (len(voltages), len(rates)).
        self._grids = {
            name: np.array(
                [
                    [
                        _safe_log(points[(i, j)].metric(name))
                        for j in range(len(rates))
                    ]
                    for i in range(len(voltages))
                ]
            )
            for name in _METRICS
        }

    # -- fitting -----------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        context: "RunContext",
        voltages: "tuple[float, ...] | list[float]",
        rates: "tuple[float, ...] | list[float]",
        samples: int = 16,
        error_budget: float = DEFAULT_ERROR_BUDGET,
        spot_check_every: int = 8,
    ) -> "LatencySurrogate":
        """Solve (or load) the exact grid and assemble the surrogate.

        Grid corners already persisted by an earlier run load from the
        context's :class:`~repro.engine.cache.ProfileStore` without
        touching the solver — a warm refit is pure I/O.
        """
        v_axis = np.array(sorted(set(float(v) for v in voltages)))
        r_axis = np.array(sorted(set(float(r) for r in rates)))
        if v_axis.size < 2:
            raise ValueError("surrogate needs at least two grid voltages")
        if r_axis.size < 1:
            raise ValueError("surrogate needs at least one fault rate")
        points: dict[tuple[int, int], SurrogatePoint] = {}
        for i, v in enumerate(v_axis):
            for j, rate in enumerate(r_axis):
                points[(i, j)] = _exact_point(context, float(v), float(rate), samples)
        return cls(
            context,
            v_axis,
            r_axis,
            points,
            samples,
            error_budget=error_budget,
            spot_check_every=spot_check_every,
        )

    # -- querying ----------------------------------------------------------------

    def in_hull(self, v_applied: float, rate: float) -> bool:
        """Whether a query point lies inside the fitted region."""
        return bool(
            self.voltages[0] <= v_applied <= self.voltages[-1]
            and self.rates[0] <= rate <= self.rates[-1]
        )

    def predict(self, v_applied: float, rate: float) -> dict:
        """Band metrics at ``(v_applied, rate)``.

        In-hull: bilinear log-space interpolation, O(1), with a
        deterministic exact spot check every ``spot_check_every``-th
        query feeding the ``mc.surrogate.rel_error`` gauge.
        Out-of-hull: the exact ensemble (counted as a miss).
        """
        if not self.in_hull(v_applied, rate):
            obs.count("mc.surrogate.miss")
            point = _exact_point(self.context, v_applied, rate, self.samples)
            return self._as_prediction(point, exact=True)
        obs.count("mc.surrogate.hit")
        self._in_hull_queries += 1
        predicted = {
            name: float(np.exp(self._interpolate(name, v_applied, rate)))
            for name in _METRICS
        }
        predicted["exact"] = False
        if (
            self.spot_check_every
            and self._in_hull_queries % self.spot_check_every == 0
        ):
            self._spot_check(v_applied, rate, predicted)
        return predicted

    def _interpolate(self, name: str, v_applied: float, rate: float) -> float:
        grid = self._grids[name]
        i, ti = _bracket(self.voltages, v_applied)
        j, tj = _bracket(self.rates, rate)
        top = (1.0 - tj) * grid[i, j] + tj * grid[i, min(j + 1, grid.shape[1] - 1)]
        i2 = min(i + 1, grid.shape[0] - 1)
        bottom = (
            (1.0 - tj) * grid[i2, j] + tj * grid[i2, min(j + 1, grid.shape[1] - 1)]
        )
        return (1.0 - ti) * top + ti * bottom

    def _spot_check(
        self, v_applied: float, rate: float, predicted: dict
    ) -> None:
        exact = _exact_point(self.context, v_applied, rate, self.samples)
        worst = 0.0
        for name in _METRICS:
            reference = exact.metric(name)
            if not np.isfinite(reference) or reference == 0.0:
                continue
            worst = max(worst, abs(predicted[name] - reference) / abs(reference))
        self.last_rel_error = worst
        obs.count("mc.surrogate.spot_checks")
        obs.gauge("mc.surrogate.rel_error", worst)
        if worst > self.error_budget:
            obs.count("mc.surrogate.budget_violations")

    @staticmethod
    def _as_prediction(point: SurrogatePoint, exact: bool) -> dict:
        out = {name: point.metric(name) for name in _METRICS}
        out["exact"] = exact
        return out


def _bracket(axis: np.ndarray, value: float) -> tuple[int, float]:
    """Lower grid index and interpolation fraction along one axis."""
    i = int(np.searchsorted(axis, value, side="right") - 1)
    i = max(0, min(i, axis.size - 2)) if axis.size > 1 else 0
    if axis.size == 1:
        return 0, 0.0
    span = axis[i + 1] - axis[i]
    t = 0.0 if span == 0 else float((value - axis[i]) / span)
    return i, min(1.0, max(0.0, t))


def _safe_log(value: float) -> float:
    """Log with a floor so a zeroed metric cannot produce -inf grids."""
    return float(np.log(max(value, 1e-300)))


def _exact_point(
    context: "RunContext", v_applied: float, rate: float, samples: int
) -> SurrogatePoint:
    """One exact ensemble solve, persisted through the ProfileStore."""
    seed = context.seed_for(_SURROGATE_SEED_BASE, "mc-surrogate")
    parts = (
        "mc-point",
        context.config_hash(),
        context.solver,
        samples,
        seed,
        f"{v_applied:.6f}",
        f"{rate:.9g}",
    )
    store = context.profile_store
    if store is not None and store.enabled:
        cached = store.load(parts)
        if _valid_point(cached):
            obs.count("mc.surrogate.point_loads")
            return SurrogatePoint(
                v_applied=v_applied, rate=rate, **{k: cached[k] for k in _METRICS}
            )
    master = FaultModel.at_rate(rate, seed=seed)
    result = run_ensemble(context, samples=samples, faults=master, v_applied=v_applied)
    point = SurrogatePoint(
        v_applied=v_applied,
        rate=rate,
        latency_us_p50=result.latency_us.p50,
        latency_us_p99=result.latency_us.p99,
        lifetime_p1=result.lifetime_at_risk.p1,
    )
    if store is not None and store.enabled:
        store.store(parts, {name: point.metric(name) for name in _METRICS})
    return point


def _valid_point(value: object) -> bool:
    """A persisted point must carry finite floats for every metric."""
    if not isinstance(value, dict):
        return False
    for name in _METRICS:
        metric = value.get(name)
        if not isinstance(metric, float) or not np.isfinite(metric):
            return False
    return True
