"""Vectorized Monte Carlo ensemble over array-instance variability.

Point estimates are the wrong output for RESET latency and endurance:
both are distributions driven by cell-level variation (Li et al.'s
stochastic-behaviors study; von Witzleben et al.'s intrinsic RESET
speed limit).  :func:`run_ensemble` stacks K array *instances* of one
configuration — each with independently seeded stuck cells, wire/LRS
spread, and sampled pump droop derived from a master
:class:`~repro.faults.model.FaultModel` via its chained-token
:meth:`~repro.faults.model.FaultModel.for_instance` scheme — and
reports p1/p50/p99 percentile bands instead of scalars.

The expensive part is the Newton solves behind each instance's BL drop
profile: instance droop shifts the applied voltage, so K instances
spread over many distinct voltage quanta.  All those profile networks
share one sparsity pattern, which is exactly the ``batched`` backend's
sweet spot — the whole ensemble's missing quanta go through
:meth:`~repro.xpoint.vmap.ArrayIRModel.ensemble_bl_profiles` as one
flat ``solve_ensemble`` batch, amortizing each factorisation across
every instance instead of paying it per instance (the per-instance
``reference`` path re-solves its own grid per instance; the schema-7
``mc_matrix`` bench gate holds the ratio at >= 5x for K = 64).
The fault layering on top is the same analytic algebra as
:meth:`~repro.xpoint.vmap.ArrayIRModel.v_eff_map`, evaluated
per instance, so a K=1 ensemble is in 1e-9 V parity with the
single-instance path (locked by ``tests/mc/test_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .. import obs
from ..circuit.crosspoint import BASELINE_BIAS, BiasScheme
from ..faults.model import FaultModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.context import RunContext

__all__ = [
    "EnsembleResult",
    "InstanceResult",
    "PercentileBand",
    "run_ensemble",
]


@dataclass(frozen=True)
class PercentileBand:
    """A p1/p50/p99 summary of one metric across ensemble instances.

    ``p1 <= p50 <= p99`` holds by construction (``numpy.percentile`` is
    monotone in the percentile argument); the statistics suite locks
    it.  For a lifetime metric the p1 edge reads as *lifetime at risk*:
    the endurance the 99th-percentile-unluckiest array still reaches.
    """

    p1: float
    p50: float
    p99: float

    @classmethod
    def from_samples(cls, values: "np.ndarray | list[float]") -> "PercentileBand":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot band an empty sample set")
        finite = arr[np.isfinite(arr)]
        if finite.size == 0:
            # Every instance diverged (e.g. all latencies inf): the band
            # is degenerate at the shared non-finite value.
            return cls(float(arr[0]), float(arr[0]), float(arr[0]))
        if finite.size < arr.size:
            # Mixed finite/inf samples: percentiles over the raw array
            # would interpolate with inf and poison the median; rank
            # them instead by clamping non-finite samples to the finite
            # extreme they sit beyond.
            lo, hi = float(finite.min()), float(finite.max())
            arr = np.clip(np.nan_to_num(arr, posinf=hi, neginf=lo), lo, hi)
        p1, p50, p99 = np.percentile(arr, (1.0, 50.0, 99.0))
        return cls(float(p1), float(p50), float(p99))

    def as_dict(self) -> dict:
        return {"p1": self.p1, "p50": self.p50, "p99": self.p99}


@dataclass(frozen=True)
class InstanceResult:
    """Scalar margins of one sampled array instance.

    The metric definitions mirror the fault-sweep's ``_sweep_cell`` —
    worst finite latency over live cells, minimum endurance over live
    cells, fraction of live cells below the write-failure floor — so
    ensemble rows and sweep rows aggregate in the same units.
    """

    instance: int
    seed: int
    droop: float
    latency_us: float
    min_endurance: float
    fail_fraction: float
    stuck_fraction: float

    def as_dict(self) -> dict:
        return {
            "instance": self.instance,
            "seed": self.seed,
            "droop": self.droop,
            "latency_us": self.latency_us,
            "min_endurance": self.min_endurance,
            "fail_fraction": self.fail_fraction,
            "stuck_fraction": self.stuck_fraction,
        }


@dataclass(frozen=True)
class EnsembleResult:
    """One Monte Carlo ensemble's typed artifact."""

    config_hash: str
    solver: str
    samples: int
    master_seed: int
    quanta_solved: int
    latency_us: PercentileBand
    lifetime_at_risk: PercentileBand  # band over per-instance min endurance
    fail_fraction: PercentileBand
    instances: tuple[InstanceResult, ...]

    def as_dict(self) -> dict:
        return {
            "config_hash": self.config_hash,
            "solver": self.solver,
            "samples": self.samples,
            "master_seed": self.master_seed,
            "quanta_solved": self.quanta_solved,
            "latency_us": self.latency_us.as_dict(),
            "lifetime_at_risk": self.lifetime_at_risk.as_dict(),
            "fail_fraction": self.fail_fraction.as_dict(),
            "instances": [inst.as_dict() for inst in self.instances],
        }


def run_ensemble(
    context: "RunContext",
    samples: int,
    faults: "FaultModel | None" = None,
    v_applied: "float | None" = None,
    bias: BiasScheme = BASELINE_BIAS,
    chunk: int | None = None,
) -> EnsembleResult:
    """Solve a K-instance Monte Carlo ensemble of one configuration.

    ``faults`` is the *master* fault scenario (default: the context's,
    else a perfect array); instance ``i`` runs under
    ``faults.for_instance(i)``, so the whole ensemble derives from one
    master seed and is bit-reproducible.  Only the BL profiles at the
    instances' drooped voltage quanta hit the solver — everything
    above them is the analytic fault layer evaluated per instance with
    (A, A) temporaries, so memory stays flat in K.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    master = faults if faults is not None else (context.faults or FaultModel())
    config = context.config
    a = config.array.size
    if v_applied is None:
        v_applied = config.cell.v_reset
    model = context.nominal_ir_model()
    cell_model = model.cell_model
    v_fail = config.cell.v_write_fail

    with obs.span("mc.ensemble", array=a, samples=samples):
        droops = master.ensemble_droops(samples)
        v_inst = v_applied * (1.0 - droops)
        # Count quanta that genuinely hit the solver: the registry's
        # ``stores`` counter tracks locally computed artefacts only, so
        # promotions out of the shared-memory plane or the disk store
        # (which a registry-size delta would miscount as solves) stay
        # out of the number.
        before = _registry().stores
        profiles = model.ensemble_bl_profiles(v_inst, bias, chunk=chunk)
        quanta_solved = max(0, _registry().stores - before)
        wl_drop = np.asarray(model.wl_model.drop(np.arange(a), 1, bias))

        instances = []
        from ..xpoint.vmap import _VOLTAGE_QUANTUM

        for i in range(samples):
            fm = master.for_instance(i)
            sa0, sa1 = fm.stuck_masks(a)
            wl_factors, bl_factors = fm.line_factors(a)
            cell_factors = fm.cell_latency_factors(a)
            profile = profiles[int(round(float(v_inst[i]) / _VOLTAGE_QUANTUM))]
            v_eff = (
                v_inst[i]
                - profile[:, None] * bl_factors[None, :]
                - wl_drop[None, :] * wl_factors[:, None]
            )
            latency = np.asarray(cell_model.reset_latency(v_eff)) * cell_factors
            latency[sa0] = 0.0
            latency[sa1] = np.inf
            endurance = np.asarray(cell_model.endurance(latency))
            endurance[sa0 | sa1] = 0.0
            alive = ~(sa0 | sa1)
            finite = latency[alive & np.isfinite(latency)]
            instances.append(
                InstanceResult(
                    instance=i,
                    seed=fm.seed,
                    droop=float(droops[i]),
                    latency_us=(
                        float(finite.max() * 1e6) if finite.size else float("inf")
                    ),
                    min_endurance=(
                        float(endurance[alive].min()) if alive.any() else 0.0
                    ),
                    fail_fraction=float(np.mean(v_eff[alive] < v_fail)),
                    stuck_fraction=float(1.0 - alive.mean()),
                )
            )

    obs.count("mc.instances", samples)
    return EnsembleResult(
        config_hash=context.config_hash(),
        solver=context.solver,
        samples=samples,
        master_seed=master.seed,
        quanta_solved=quanta_solved,
        latency_us=PercentileBand.from_samples(
            [inst.latency_us for inst in instances]
        ),
        lifetime_at_risk=PercentileBand.from_samples(
            [inst.min_endurance for inst in instances]
        ),
        fail_fraction=PercentileBand.from_samples(
            [inst.fail_fraction for inst in instances]
        ),
        instances=tuple(instances),
    )


def _registry():
    from ..xpoint.vmap import profile_registry

    return profile_registry
