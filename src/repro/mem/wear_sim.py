"""Monte-Carlo wear simulation: failure injection for the lifetime model.

The analytic estimator of :mod:`repro.mem.lifetime` assumes perfect
wear leveling and near-uniform cell wear.  This module *simulates* the
process on a scaled-down bank — per-cell endurance sampled with process
variation, random write masks, inter-line remapping, intra-line
rotation, and ECP repair — and reports the write count at which the
first line dies.  The test suite checks the analytic model against it.

Everything is scaled: a few hundred lines with a few dozen cells each
and endurance in the thousands stand in for 67M lines x 512 cells x
5e6 writes; the *ratios* under study (ECP extension, wear-leveling
uniformity, write-fraction inflation) are scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WearSimParams", "WearSimResult", "WearSimulator"]


@dataclass(frozen=True)
class WearSimParams:
    """Scaled-down bank for failure injection."""

    lines: int = 256
    cells_per_line: int = 64
    mean_endurance: float = 2000.0
    endurance_cv: float = 0.15
    cell_write_fraction: float = 0.5  # Flip-N-Write worst case
    ecp_pointers: int = 6
    wear_leveling: bool = True
    hot_line_fraction: float = 1.0  # <1.0 concentrates traffic (no WL)

    def __post_init__(self) -> None:
        if self.lines < 2 or self.lines & (self.lines - 1):
            raise ValueError("lines must be a power of two >= 2")
        if self.cells_per_line < 1:
            raise ValueError("cells_per_line must be positive")
        if self.mean_endurance <= 0:
            raise ValueError("mean endurance must be positive")
        if not 0 < self.cell_write_fraction <= 1:
            raise ValueError("cell write fraction must be in (0, 1]")
        if not 0 < self.hot_line_fraction <= 1:
            raise ValueError("hot line fraction must be in (0, 1]")


@dataclass(frozen=True)
class WearSimResult:
    """Outcome of one injection run."""

    line_writes_to_failure: int
    failed_line: int
    total_cell_writes: int

    def lifetime_seconds(self, write_cycle_s: float, concurrency: int = 1) -> float:
        """Convert to wall-clock time at one write per ``write_cycle_s``."""
        return self.line_writes_to_failure * write_cycle_s / max(1, concurrency)


class WearSimulator:
    """Round-based failure injection on one bank."""

    def __init__(self, params: WearSimParams, seed: int = 0) -> None:
        self.params = params
        self._rng = np.random.default_rng(seed)
        shape = (params.lines, params.cells_per_line)
        endurance = self._rng.normal(
            params.mean_endurance,
            params.endurance_cv * params.mean_endurance,
            size=shape,
        )
        self.endurance = np.maximum(endurance, 1.0)
        self.wear = np.zeros(shape, dtype=np.int64)
        self._rotation = np.zeros(params.lines, dtype=np.int64)

    def _write_round(self, round_index: int) -> None:
        """Every (hot) line receives one write with a fresh random mask."""
        params = self.params
        lines, cells = self.wear.shape
        hot_lines = max(1, int(lines * params.hot_line_fraction))
        masks = (
            self._rng.random((hot_lines, cells)) < params.cell_write_fraction
        )
        if params.wear_leveling:
            # Inter-line: re-key the permutation each round; intra-line:
            # rotate each line's mask by its current offset.
            key = int(self._rng.integers(lines))
            targets = (np.arange(hot_lines) ^ key) % lines
            shift = round_index % cells
            masks = np.roll(masks, shift, axis=1)
        else:
            targets = np.arange(hot_lines)
        self.wear[targets] += masks

    def _first_dead_line(self) -> int:
        """Index of a dead line, or -1."""
        failed_cells = (self.wear >= self.endurance).sum(axis=1)
        dead = np.flatnonzero(failed_cells > self.params.ecp_pointers)
        return int(dead[0]) if dead.size else -1

    def run(self, max_rounds: int | None = None) -> WearSimResult:
        """Write rounds until the first line dies."""
        params = self.params
        if max_rounds is None:
            max_rounds = int(20 * params.mean_endurance)
        hot_lines = max(1, int(params.lines * params.hot_line_fraction))
        for round_index in range(1, max_rounds + 1):
            self._write_round(round_index)
            if round_index % 16 == 0 or round_index == max_rounds:
                dead = self._first_dead_line()
                if dead >= 0:
                    return WearSimResult(
                        line_writes_to_failure=round_index * hot_lines,
                        failed_line=dead,
                        total_cell_writes=int(self.wear.sum()),
                    )
        raise RuntimeError(
            f"no line died within {max_rounds} rounds; raise max_rounds"
        )

    def analytic_prediction(self) -> float:
        """The lifetime model's estimate in the same units (line writes).

        Mirrors :class:`repro.mem.lifetime.LifetimeEstimator`: each line
        survives ``endurance / fraction`` writes, wear leveling spreads
        them over the (hot) population, and ECP absorbs the weakest
        cells.
        """
        from .ecp import ecp_lifetime_factor

        params = self.params
        ecp = ecp_lifetime_factor(
            line_bits=params.cells_per_line,
            pointers=params.ecp_pointers,
            endurance_cv=params.endurance_cv,
        )
        # The first failure is driven by the weakest cell of the whole
        # population, not the mean: approximate the minimum of N normal
        # draws at ~3 sigma below the mean for the scaled sizes here.
        population = params.lines * params.cells_per_line
        sigmas = min(4.0, np.sqrt(2 * np.log(population)))
        weakest = params.mean_endurance * (
            1 - params.endurance_cv * sigmas
        )
        per_line = weakest * ecp / params.cell_write_fraction
        hot_lines = max(1, int(params.lines * params.hot_line_fraction))
        return float(per_line * hot_lines)
