"""Flip-N-Write encoding [23] (§II-B).

Flip-N-Write halves the worst-case cell writes of a line update: the
controller compares the new data with the stored data per word and, when
more than half the bits of a word would change, stores the word inverted
(one extra flip bit per word).  Only the differing cells are written.

The model works on 64-byte lines as bit arrays.  ``encode`` returns the
stored image and flip bits; ``bit_changes`` yields the RESET mask (1->0
transitions) and SET mask (0->1 transitions) actually applied to the
cells — the quantities every write-path model downstream consumes
(Figs. 9 and 14, the lifetime estimator, the energy model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FnwImage", "FlipNWrite"]


@dataclass(frozen=True)
class FnwImage:
    """Stored representation of a line: cell bits plus per-word flips."""

    cells: np.ndarray  # stored bit per cell (after any inversion)
    flips: np.ndarray  # one flip bit per word

    def logical_bits(self, word_bits: int) -> np.ndarray:
        """Recover the logical data from the stored image."""
        cells = self.cells.reshape(-1, word_bits)
        return (cells ^ self.flips[:, None]).reshape(-1)


class FlipNWrite:
    """Flip-N-Write codec over fixed-size words."""

    def __init__(self, word_bits: int = 32) -> None:
        if word_bits < 2:
            raise ValueError(f"word size must be >= 2 bits, got {word_bits}")
        self.word_bits = word_bits

    def _check(self, bits: np.ndarray) -> np.ndarray:
        bits = np.asarray(bits, dtype=bool)
        if bits.ndim != 1 or bits.size % self.word_bits:
            raise ValueError(
                f"line must be a flat multiple of {self.word_bits} bits"
            )
        return bits

    def encode(self, new_bits: np.ndarray, stored: FnwImage) -> FnwImage:
        """Choose per-word inversion minimising changed cells."""
        new_bits = self._check(new_bits)
        words = new_bits.reshape(-1, self.word_bits)
        old_cells = stored.cells.reshape(-1, self.word_bits)
        # Candidate stored images: plain or inverted per word.
        plain_cost = (words != old_cells).sum(axis=1)
        inverted_cost = (~words != old_cells).sum(axis=1)
        flips = inverted_cost < plain_cost
        cells = np.where(flips[:, None], ~words, words)
        return FnwImage(cells=cells.reshape(-1), flips=flips)

    def initial_image(self, bits: np.ndarray) -> FnwImage:
        """Stored image of freshly written data (no inversions)."""
        bits = self._check(bits)
        return FnwImage(
            cells=bits.copy(),
            flips=np.zeros(bits.size // self.word_bits, dtype=bool),
        )

    def bit_changes(
        self, stored: FnwImage, new_image: FnwImage
    ) -> tuple[np.ndarray, np.ndarray]:
        """(RESET mask, SET mask) of the cell writes for this update.

        RESET clears a cell (1 -> 0, writing '0'); SET programs it
        (0 -> 1).  Unchanged cells are skipped entirely.
        """
        old = stored.cells
        new = new_image.cells
        if old.shape != new.shape:
            raise ValueError("image size mismatch")
        resets = old & ~new
        sets = ~old & new
        return resets, sets

    def write(
        self, new_bits: np.ndarray, stored: FnwImage
    ) -> tuple[FnwImage, np.ndarray, np.ndarray]:
        """Encode and diff in one step: (new image, resets, sets)."""
        new_image = self.encode(new_bits, stored)
        resets, sets = self.bit_changes(stored, new_image)
        return new_image, resets, sets
