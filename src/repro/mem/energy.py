"""Main-memory energy accounting (Fig. 16).

Energy splits into four components:

* **read energy** — 5.6 nJ per 64B line read (Table III);
* **write energy** — the array-side RESET/SET energy (per-bit current x
  voltage x duration, accumulated by the controller) divided by the
  charge pump's 33% conversion efficiency, plus the pump charge /
  discharge energy of every write;
* **leakage** — the array peripherals and the pump leak continuously;
  this dominates the ReRAM chip power (§VI) and is what the
  hardware-based schemes inflate (DSGB's second row decoder, DSWD's
  second write-driver set, D-BL's doubled pump);
* idle arrays are power-gated [12], modelled by charging peripheral
  leakage only for the banks' active fraction plus a standby floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..techniques.base import Scheme
from .controller import ControllerStats

__all__ = ["EnergyReport", "EnergyModel"]

_STANDBY_LEAKAGE_FRACTION = 0.35
"""Chip leakage drawn even with every array power-gated (global decode,
IO, and the always-on pump stages)."""


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulation window (joules)."""

    read: float
    write: float
    pump: float
    leakage: float

    @property
    def total(self) -> float:
        return self.read + self.write + self.pump + self.leakage


class EnergyModel:
    """Scheme-aware energy accounting over controller statistics."""

    def __init__(self, config: SystemConfig, scheme: Scheme) -> None:
        self.config = config
        self.scheme = scheme
        memory = config.memory
        self.n_chips = (
            memory.channels * memory.ranks_per_channel * memory.chips_per_rank
        )

    def report(self, stats: ControllerStats, elapsed_s: float) -> EnergyReport:
        """Energy of a window of ``elapsed_s`` seconds of activity."""
        if elapsed_s < 0:
            raise ValueError(f"elapsed time must be >= 0, got {elapsed_s}")
        config = self.config
        overheads = self.scheme.overheads
        pump_params = config.pump

        read_energy = stats.reads * config.memory.e_read_line

        array_write = stats.reset_energy_j + stats.set_energy_j
        write_energy = array_write / pump_params.efficiency

        pump_energy = stats.pump_charges * (
            pump_params.e_charge * overheads.pump_charge_energy_factor
            + pump_params.e_discharge
        )

        chip_leak = (
            config.memory.chip_leakage_w * overheads.leakage_factor
            + pump_params.leakage_w * overheads.pump_leakage_factor
        )
        total_bank_time = elapsed_s * config.memory.total_banks
        active_fraction = (
            min(1.0, stats.busy_time / total_bank_time) if total_bank_time else 0.0
        )
        duty = _STANDBY_LEAKAGE_FRACTION + (1 - _STANDBY_LEAKAGE_FRACTION) * (
            active_fraction
        )
        leakage_energy = chip_leak * self.n_chips * elapsed_s * duty

        return EnergyReport(
            read=read_energy,
            write=write_energy,
            pump=pump_energy,
            leakage=leakage_energy,
        )
