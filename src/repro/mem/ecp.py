"""Error-correcting pointers (ECP [33], §III-A).

Each 64B memory line carries six error-correcting pointers: a worn-out
cell is permanently remapped to a spare cell held in the line's ECC
spare area.  A line fails — and with it, by the paper's metric, the
whole main memory — when a seventh cell dies.

``EcpLine`` is the functional per-line model used by failure-injection
tests; ``ecp_lifetime_factor`` is the analytic extension ECP buys under
near-uniform wear, used by the lifetime estimator.
"""

from __future__ import annotations

import math

__all__ = ["EcpLine", "ecp_lifetime_factor"]


class EcpLine:
    """Failure tracking for one memory line with N correction pointers."""

    def __init__(self, line_bits: int = 512, pointers: int = 6) -> None:
        if line_bits < 1:
            raise ValueError(f"line size must be positive, got {line_bits}")
        if pointers < 0:
            raise ValueError(f"pointer count must be >= 0, got {pointers}")
        self.line_bits = line_bits
        self.pointers = pointers
        self._failed_cells: set[int] = set()

    def record_cell_failure(self, bit: int) -> None:
        """Mark a cell as worn out (idempotent)."""
        if not 0 <= bit < self.line_bits:
            raise ValueError(f"bit {bit} outside line of {self.line_bits} bits")
        self._failed_cells.add(bit)

    @property
    def failed_cells(self) -> int:
        return len(self._failed_cells)

    @property
    def remaining_pointers(self) -> int:
        return max(0, self.pointers - self.failed_cells)

    @property
    def is_dead(self) -> bool:
        """True once more cells failed than the pointers can cover."""
        return self.failed_cells > self.pointers


def ecp_lifetime_factor(
    line_bits: int = 512,
    pointers: int = 6,
    endurance_cv: float = 0.15,
) -> float:
    """Lifetime extension from ECP under near-uniform wear.

    With perfect wear leveling every cell of a line accumulates writes at
    the same rate, but individual cell endurance varies (coefficient of
    variation ``endurance_cv`` around the mean, a ~15% process spread).  Without ECP the line dies at its *weakest* cell (the
    minimum of ``line_bits`` draws); with N pointers it survives until
    the (N+1)-th weakest dies.  For a normal-ish endurance spread the
    expected k-th order statistic sits about
    ``cv * (z(1/n) - z((k+1)/n))`` fractions of the mean above the
    minimum; the resulting factor is small (ECP is there to absorb
    variance, not to extend life), around 1.1x for the default numbers.
    """
    if pointers == 0:
        return 1.0
    if not 0 <= endurance_cv < 1:
        raise ValueError(f"endurance CV must be in [0, 1), got {endurance_cv}")

    def z(p: float) -> float:
        """Approximate standard-normal quantile (Acklam-lite via erfinv)."""
        return math.sqrt(2.0) * _erfinv(2.0 * p - 1.0)

    n = line_bits
    first = 1.0 / (n + 1.0)
    kth = (pointers + 1.0) / (n + 1.0)
    # Mean endurance of the cell that kills the line, relative to the
    # weakest cell's.
    weakest = 1.0 + endurance_cv * z(first)
    killer = 1.0 + endurance_cv * z(kth)
    if weakest <= 0:
        return 1.0
    return max(1.0, killer / weakest)


def _erfinv(x: float) -> float:
    """Winitzki's approximation of the inverse error function."""
    if not -1.0 < x < 1.0:
        raise ValueError(f"erfinv domain is (-1, 1), got {x}")
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    term = 2.0 / (math.pi * a) + ln_term / 2.0
    return math.copysign(
        math.sqrt(math.sqrt(term * term - ln_term / a) - term), x
    )
