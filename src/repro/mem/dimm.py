"""NVDIMM-P geometry and address mapping (§II-C, Fig. 5a).

One channel hosts two ranks; a rank spreads eight 8-bit 4 GB ReRAM
chips, so each 64B line is striped across all chips of its rank and
across 64 MATs within them.  Logic banks interleave across the chips;
the bridge chip [31] translates line addresses and runs Flip-N-Write.

``AddressMapping`` turns a line-aligned physical address into the
(channel, rank, bank, array-row) coordinates the controller and the
IR-drop latency tables need.  Array rows are assigned through a mixing
hash: inter-line wear leveling randomises line placement anyway, so row
occupancy is uniform — except under SCH scheduling, which deliberately
maps hot lines to fast (low) rows via the hotness rank.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MemoryParams
from ..techniques.sch import scheduled_row

__all__ = ["LineLocation", "AddressMapping"]


@dataclass(frozen=True)
class LineLocation:
    """Physical placement of one memory line."""

    channel: int
    rank: int
    bank: int
    row: int  # MAT row (0..A-1), the DRVR section selector

    @property
    def global_bank(self) -> tuple[int, int, int]:
        return (self.channel, self.rank, self.bank)


class AddressMapping:
    """Line address to DIMM coordinates."""

    def __init__(
        self, memory: MemoryParams, array_rows: int, scheduling: bool = False
    ) -> None:
        self.memory = memory
        self.array_rows = array_rows
        self.scheduling = scheduling

    def _mix(self, value: int) -> int:
        """64-bit multiplicative hash (splitmix64 finaliser)."""
        value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 % (1 << 64)
        value = (value ^ (value >> 27)) * 0x94D049BB133111EB % (1 << 64)
        return value ^ (value >> 31)

    def locate(
        self, address: int, hotness_rank: float | None = None
    ) -> LineLocation:
        """Map a byte address to its line's physical coordinates.

        ``hotness_rank`` in [0, 1) steers row placement when SCH
        scheduling is active (0 = hottest line, fastest row).
        """
        if address < 0:
            raise ValueError(f"address must be >= 0, got {address}")
        line = address // self.memory.line_bytes
        channel = line % self.memory.channels
        line //= self.memory.channels
        bank = line % self.memory.banks_per_rank
        line //= self.memory.banks_per_rank
        rank = line % self.memory.ranks_per_channel
        line //= self.memory.ranks_per_channel
        if self.scheduling and hotness_rank is not None:
            row = scheduled_row(hotness_rank, self.array_rows)
        else:
            row = self._mix(line) % self.array_rows
        return LineLocation(channel=channel, rank=rank, bank=bank, row=row)

    @property
    def total_banks(self) -> int:
        return self.memory.total_banks
