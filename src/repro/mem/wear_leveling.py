"""Inter-line and intra-line wear leveling (§I, [11], [12]).

ReRAM cells tolerate ~5e6 over-RESET writes, so a main memory must
spread write traffic:

* **inter-line** (Security-Refresh-style [11]): the bank periodically
  re-keys a lightweight address permutation, migrating lines so that no
  physical line stays hot.  Modelled as an XOR permutation whose key is
  rotated every ``epoch_writes`` writes.
* **intra-line** (row shifting [12]): each line's cells are rotated by
  a byte offset that advances every ``shift_interval`` writes, so a hot
  word wears all positions of its word-line equally.  This is the
  mechanism that defeats RBDL's careful data layout (§III-B).

Both classes are functional models: they track write counts and expose
the current mapping, and their statistical behaviour (uniform wear) is
what the property-based tests verify.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InterLineWearLeveling", "IntraLineWearLeveling"]


class InterLineWearLeveling:
    """XOR-permutation inter-line wear leveling over one bank."""

    def __init__(self, lines: int, epoch_writes: int = 100, seed: int = 7) -> None:
        if lines < 2 or lines & (lines - 1):
            raise ValueError(f"line count must be a power of two >= 2, got {lines}")
        if epoch_writes < 1:
            raise ValueError(f"epoch length must be >= 1, got {epoch_writes}")
        self.lines = lines
        self.epoch_writes = epoch_writes
        self._rng = np.random.default_rng(seed)
        self._key = int(self._rng.integers(0, lines))
        self._next_key = int(self._rng.integers(0, lines))
        self._writes = 0

    def physical_line(self, logical_line: int) -> int:
        """Current physical placement of a logical line."""
        if not 0 <= logical_line < self.lines:
            raise ValueError(f"line {logical_line} outside bank of {self.lines}")
        return logical_line ^ self._key

    def record_write(self, logical_line: int) -> int:
        """Account one write; returns the physical line it landed on.

        Advancing the epoch re-keys the permutation, which in hardware
        is the background swap migration of Security Refresh.
        """
        physical = self.physical_line(logical_line)
        self._writes += 1
        if self._writes % self.epoch_writes == 0:
            self._key = self._next_key
            self._next_key = int(self._rng.integers(0, self.lines))
        return physical

    @property
    def writes(self) -> int:
        return self._writes


class IntraLineWearLeveling:
    """Row-shifting intra-line wear leveling for one line."""

    def __init__(
        self, line_bits: int = 512, shift_interval: int = 256, shift_bits: int = 8
    ) -> None:
        if line_bits < 1:
            raise ValueError(f"line size must be positive, got {line_bits}")
        if shift_interval < 1:
            raise ValueError(f"shift interval must be >= 1, got {shift_interval}")
        if shift_bits < 1 or line_bits % shift_bits:
            raise ValueError(
                f"shift granularity {shift_bits} must divide line size {line_bits}"
            )
        self.line_bits = line_bits
        self.shift_interval = shift_interval
        self.shift_bits = shift_bits
        self._writes = 0

    @property
    def offset_bits(self) -> int:
        """Current rotation of the line's cells (bits)."""
        steps = self._writes // self.shift_interval
        return (steps * self.shift_bits) % self.line_bits

    def physical_positions(self, logical_bits: np.ndarray) -> np.ndarray:
        """Rotate a logical bit mask onto its current cell positions."""
        mask = np.asarray(logical_bits, dtype=bool)
        if mask.size != self.line_bits:
            raise ValueError(
                f"mask has {mask.size} bits, line holds {self.line_bits}"
            )
        return np.roll(mask, self.offset_bits)

    def record_write(self) -> None:
        """Account one write toward the next shift step."""
        self._writes += 1

    @property
    def writes(self) -> int:
        return self._writes
