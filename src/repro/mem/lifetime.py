"""Main-memory lifetime estimation under non-stop writes (Fig. 5b).

The paper's metric (§III-A, after [33]): non-stop writes arrive at every
bank, each write carries the worst-case data pattern (50% of the line's
cells change, the Flip-N-Write bound), perfect inter- and intra-line
wear leveling spreads traffic evenly, and six ECPs protect each 64B
line.  The system fails when the first line wears out.

The estimate decomposes per scheme into

* the minimum cell endurance across the array under the scheme's
  voltages (Equation 2 on the scheme's latency map),
* the per-bank write cycle time (worst-case line write latency plus
  charge-pump and controller overheads),
* the effective cell-write fraction per line write (50% from
  Flip-N-Write, inflated by PR pairs or D-BL dummy RESETs),
* the wear-leveled line population per bank — or, for schemes that are
  incompatible with wear leveling (SCH/RBDL, Table II), only the hot
  fraction of it, which is why ``Hard+Sys`` fails within days.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..techniques.base import Scheme, SchemeLatencyModel
from ..units import to_days, to_years
from .ecp import ecp_lifetime_factor

__all__ = ["LifetimeReport", "LifetimeEstimator", "NO_WEAR_LEVELING_HOT_FRACTION"]

NO_WEAR_LEVELING_HOT_FRACTION = 1e-3
"""Fraction of a bank's lines that absorb the write traffic when wear
leveling is disabled: the residual write locality of the worst workload
after the in-package DRAM cache.  Without the DRAM cache the paper notes
a ReRAM main memory can fail within minutes [11]."""


@dataclass(frozen=True)
class LifetimeReport:
    """Lifetime decomposition for one scheme."""

    scheme: str
    min_endurance: float  # weakest cell's write endurance
    write_cycle_s: float  # per-bank back-to-back write period
    cell_write_fraction: float  # cells written per line write
    wear_leveled: bool
    lifetime_s: float

    @property
    def years(self) -> float:
        return to_years(self.lifetime_s)

    @property
    def days(self) -> float:
        return to_days(self.lifetime_s)


class LifetimeEstimator:
    """Fig. 5b's lifetime metric for arbitrary schemes.

    ``context`` (an engine :class:`~repro.engine.context.RunContext`)
    threads the run's solver backend and profile store into the latency
    tables; the tables themselves are memoised per scheme so
    :meth:`min_endurance` and :meth:`write_cycle` share one build.
    """

    def __init__(self, config: SystemConfig, context=None) -> None:
        self.config = config
        self.context = context
        self._latency_models: dict[int, SchemeLatencyModel] = {}

    def _latency_model(self, scheme: Scheme) -> SchemeLatencyModel:
        model = self._latency_models.get(id(scheme))
        if model is None:
            model = SchemeLatencyModel(
                self.config, scheme, context=self.context
            )
            self._latency_models[id(scheme)] = model
        return model

    # -- components -------------------------------------------------------------

    def min_endurance(self, scheme: Scheme) -> float:
        """Weakest cell endurance under the scheme's applied voltages.

        Evaluated on the 1-bit latency map: partitioning only ever slows
        cells down (raising their endurance), so the 1-bit map holds the
        fastest — most over-RESET — operating point of every cell.
        """
        latency_model = self._latency_model(scheme)
        ir = latency_model.ir_model
        v_matrix = scheme.regulator.matrix(ir)
        endurance = ir.endurance_map(v_matrix, n_bits=1, bias=scheme.bias)
        finite = endurance[np.isfinite(endurance)]
        if finite.size == 0:
            raise ValueError(f"scheme {scheme.name} cannot write any cell")
        return float(finite.min())

    def write_cycle(self, scheme: Scheme) -> float:
        """Per-bank worst-case back-to-back write period (s)."""
        latency_model = self._latency_model(scheme)
        pump = self.config.pump
        charge = pump.t_charge * scheme.overheads.pump_charge_latency_factor
        return (
            latency_model.worst_case_write_latency()
            + charge
            + pump.t_discharge
            + self.config.lifetime.write_overhead
        )

    def cell_write_fraction(self, scheme: Scheme, samples: int = 64) -> float:
        """Cells written per line write under worst-case data patterns.

        Flip-N-Write bounds the data-required changes at 50%; PR pairs
        and D-BL dummies add more.  Measured by pushing random
        half-changed 8-bit patterns through the scheme's partitioner.
        """
        width = self.config.array.data_width
        base_fraction = self.config.lifetime.flip_n_write_fraction
        changes = max(1, int(round(width * base_fraction)))
        rng = np.random.default_rng(11)
        total_ops = 0
        total_required = 0
        for _ in range(samples):
            changed = rng.choice(width, size=changes, replace=False)
            flip_to_zero = rng.random(changes) < 0.5
            reset_bits = np.zeros(width, dtype=bool)
            set_bits = np.zeros(width, dtype=bool)
            reset_bits[changed[flip_to_zero]] = True
            set_bits[changed[~flip_to_zero]] = True
            if not reset_bits.any() and not set_bits.any():
                continue
            plan = scheme.partitioner.plan(reset_bits, set_bits)
            total_ops += len(plan.reset_groups) + len(plan.set_groups)
            total_required += changes
        if total_required == 0:
            return base_fraction
        inflation = total_ops / total_required
        return min(1.0, base_fraction * inflation)

    # -- the estimate -------------------------------------------------------------

    def estimate(self, scheme: Scheme) -> LifetimeReport:
        """Lifetime of the main memory under non-stop writes."""
        memory = self.config.memory
        endurance = self.min_endurance(scheme)
        cycle = self.write_cycle(scheme)
        fraction = self.cell_write_fraction(scheme)
        lines_per_bank = memory.lines // memory.total_banks
        wear_leveled = scheme.wear_leveling_compatible
        population = lines_per_bank * (
            1.0 if wear_leveled else NO_WEAR_LEVELING_HOT_FRACTION
        )
        ecp = ecp_lifetime_factor(
            line_bits=memory.line_bytes * 8,
            pointers=self.config.lifetime.ecp_per_line,
        )
        line_writes_to_death = endurance * ecp / fraction
        lifetime = line_writes_to_death * population * cycle
        return LifetimeReport(
            scheme=scheme.name,
            min_endurance=endurance,
            write_cycle_s=cycle,
            cell_write_fraction=fraction,
            wear_leveled=wear_leveled,
            lifetime_s=float(lifetime),
        )
