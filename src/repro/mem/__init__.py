"""Main-memory substrate: Flip-N-Write, line-to-MAT mapping, the
NVDIMM-P geometry, the read-priority controller with write bursts,
wear leveling, ECP, and the lifetime / energy models."""

from .controller import ControllerStats, MemoryController, PendingRead, PendingWrite
from .dimm import AddressMapping, LineLocation
from .ecp import EcpLine, ecp_lifetime_factor
from .energy import EnergyModel, EnergyReport
from .flip_n_write import FlipNWrite, FnwImage
from .lifetime import LifetimeEstimator, LifetimeReport
from .line_codec import LineWriteModel, LineWriteResult
from .timing import MemoryTiming
from .wear_leveling import InterLineWearLeveling, IntraLineWearLeveling
from .wear_sim import WearSimParams, WearSimResult, WearSimulator

__all__ = [
    "ControllerStats",
    "MemoryController",
    "PendingRead",
    "PendingWrite",
    "AddressMapping",
    "LineLocation",
    "EcpLine",
    "ecp_lifetime_factor",
    "EnergyModel",
    "EnergyReport",
    "FlipNWrite",
    "FnwImage",
    "LifetimeEstimator",
    "LifetimeReport",
    "LineWriteModel",
    "LineWriteResult",
    "MemoryTiming",
    "InterLineWearLeveling",
    "IntraLineWearLeveling",
    "WearSimParams",
    "WearSimResult",
    "WearSimulator",
]
