"""Mapping a 64-byte line onto its 64 8-bit-wide MATs (§IV-B).

A memory line is striped across 64 cross-point MATs; each MAT stores
8 consecutive bits of the line through its 8 column-multiplexer groups
(bit ``k`` of a MAT slice lands in column group ``k``).  The RESET/SET
masks produced by Flip-N-Write are therefore reshaped to ``(64, 8)``;
each row is fed to the active scheme's partitioner, and the slowest
MAT's plan decides the line's RESET-phase latency.

``LineWriteResult`` aggregates everything the memory controller, energy
model, lifetime estimator and Figs. 9/14 need about one line write.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..techniques.base import Scheme, SchemeLatencyModel, WritePlan

__all__ = ["LineWriteResult", "LineWriteModel"]


@dataclass
class LineWriteResult:
    """Outcome of writing one 64B line under a scheme."""

    plans: list[WritePlan]  # one per MAT (only MATs with activity)
    reset_bits: int  # data-required RESETs across the line
    set_bits: int  # data-required SETs
    extra_resets: int  # added by the partitioner (PR pairs, dummies)
    extra_sets: int
    latency: float  # line write latency (slowest MAT, s)
    reset_latency: float  # RESET-phase share of the latency (s)
    concurrent_resets: int  # line-wide concurrent RESETs (pump budget)
    concurrent_sets: int
    reset_energy: float = 0.0  # array-side RESET energy (J), pre-pump
    set_energy: float = 0.0

    @property
    def total_resets(self) -> int:
        return self.reset_bits + self.extra_resets

    @property
    def total_sets(self) -> int:
        return self.set_bits + self.extra_sets

    @property
    def total_writes(self) -> int:
        return self.total_resets + self.total_sets


class LineWriteModel:
    """Applies a scheme's partitioner and latency tables to line writes."""

    def __init__(self, config: SystemConfig, scheme: Scheme) -> None:
        self.config = config
        self.scheme = scheme
        self.latency_model = SchemeLatencyModel(config, scheme)
        self.mats = config.memory.line_bytes  # 64 MATs per 64B line
        self.width = config.array.data_width
        # Partitioner plans depend only on the 8-bit mask pair (at most
        # 3^8 combinations), and latencies additionally on the row --
        # memoising both makes trace-driven simulation tractable.
        self._plan_cache: dict[tuple[int, int], WritePlan] = {}
        self._latency_cache: dict[
            tuple[int, tuple[int, ...], bool], tuple[float, float]
        ] = {}
        self._energy_cache: dict[tuple[int, tuple[int, ...]], float] = {}
        self._bit_weights = 1 << np.arange(self.width)
        # Per-(row, group) applied voltage for RESET energy accounting.
        ir = self.latency_model.ir_model
        a = config.array.size
        group_cols = np.arange(self.width) * (a // self.width) + (
            a // self.width - 1
        )
        self._v_matrix = scheme.regulator.matrix(ir)[:, group_cols]
        self._i_on = config.cell.i_on
        self._e_set_bit = config.cell.e_set_per_bit

    def _plan_for(self, reset_key: int, set_key: int) -> WritePlan:
        key = (reset_key, set_key)
        plan = self._plan_cache.get(key)
        if plan is None:
            reset_bits = (reset_key & self._bit_weights) > 0
            set_bits = (set_key & self._bit_weights) > 0
            plan = self.scheme.partitioner.plan(reset_bits, set_bits)
            self._plan_cache[key] = plan
        return plan

    def _latency_for(self, row: int, plan: WritePlan) -> tuple[float, float]:
        """(full write latency, RESET-phase latency) for one MAT plan."""
        key = (row, plan.reset_groups, bool(plan.set_groups))
        cached = self._latency_cache.get(key)
        if cached is None:
            reset_phase = self.latency_model.reset_phase_latency(
                row, plan.reset_groups
            )
            cached = (
                self.latency_model.write_latency(row, plan),
                reset_phase,
            )
            self._latency_cache[key] = cached
        return cached

    def _reset_energy_for(self, row: int, plan: WritePlan) -> float:
        """Array-side RESET energy: each bit conducts Ion at its level
        for its own RESET duration (Equation 1 latency)."""
        if not plan.reset_groups:
            return 0.0
        key = (row, plan.reset_groups)
        energy = self._energy_cache.get(key)
        if energy is None:
            groups = list(plan.reset_groups)
            n = len(groups)
            durations = self.latency_model.table[n - 1, row, groups]
            voltages = self._v_matrix[row, groups]
            energy = float(np.sum(voltages * self._i_on * durations))
            self._energy_cache[key] = energy
        return energy

    def write(
        self, resets: np.ndarray, sets: np.ndarray, row: int
    ) -> LineWriteResult:
        """Plan and time a line write.

        ``resets`` / ``sets`` are the Flip-N-Write cell masks of the
        whole line (``mats * width`` bits); ``row`` is the MAT row the
        line occupies (all MATs of a line share the row).
        """
        resets = np.asarray(resets, dtype=bool).reshape(self.mats, self.width)
        sets = np.asarray(sets, dtype=bool).reshape(self.mats, self.width)
        reset_keys = resets @ self._bit_weights
        set_keys = sets @ self._bit_weights
        plans: list[WritePlan] = []
        latency = 0.0
        reset_latency = 0.0
        extra_resets = 0
        extra_sets = 0
        concurrent_resets = 0
        concurrent_sets = 0
        reset_energy = 0.0
        set_energy = 0.0
        for mat in np.flatnonzero(reset_keys | set_keys):
            plan = self._plan_for(int(reset_keys[mat]), int(set_keys[mat]))
            plans.append(plan)
            total, reset_phase = self._latency_for(row, plan)
            latency = max(latency, total)
            reset_latency = max(reset_latency, reset_phase)
            extra_resets += plan.extra_resets
            extra_sets += plan.extra_sets
            concurrent_resets += len(plan.reset_groups)
            concurrent_sets += len(plan.set_groups)
            reset_energy += self._reset_energy_for(row, plan)
            set_energy += len(plan.set_groups) * self._e_set_bit
        return LineWriteResult(
            plans=plans,
            reset_bits=int(resets.sum()),
            set_bits=int(sets.sum()),
            extra_resets=extra_resets,
            extra_sets=extra_sets,
            latency=latency,
            reset_latency=reset_latency,
            concurrent_resets=concurrent_resets,
            concurrent_sets=concurrent_sets,
            reset_energy=reset_energy,
            set_energy=set_energy,
        )
