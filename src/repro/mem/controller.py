"""Read-priority memory controller with write bursts (Table III, [35]).

Scheduling policy, following the paper's baseline:

* reads have absolute priority: a bank serves its oldest waiting read
  first;
* writes are issued only when no read is waiting anywhere in the
  channel — except during a **write burst**: when the write queue fills,
  the controller blocks all reads and drains the queue completely [35];
* every write phase must respect the charge pump: the rank's pump
  charges for ``t_charge`` before the phase and sources at most the
  budgeted current, so over-budget writes (D-BL dummies in the worst
  case) split into multiple phases;
* writes occupy their bank for the line's RESET+SET latency, which the
  scheme's partitioner and voltage regulator determine per write.

The controller is event-driven but engine-agnostic: the owner supplies
``schedule(delay, callback)`` (the CPU simulator's heap) and receives
read completions through per-request callbacks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..config import SystemConfig
from ..techniques.base import Scheme
from .dimm import LineLocation
from .line_codec import LineWriteResult
from .timing import MemoryTiming

__all__ = ["PendingRead", "PendingWrite", "ControllerStats", "MemoryController"]


@dataclass
class PendingRead:
    arrival: float
    location: LineLocation
    on_complete: Callable[[float], None]


@dataclass
class PendingWrite:
    arrival: float
    location: LineLocation
    result: LineWriteResult


@dataclass
class ControllerStats:
    """Aggregate counters for performance and energy analysis."""

    reads: int = 0
    writes: int = 0
    read_latency_sum: float = 0.0
    write_queue_stall_time: float = 0.0
    write_bursts: int = 0
    pump_charges: int = 0
    reset_bits: int = 0
    set_bits: int = 0
    extra_resets: int = 0
    extra_sets: int = 0
    reset_energy_j: float = 0.0
    set_energy_j: float = 0.0
    write_phases: int = 0
    busy_time: float = 0.0
    write_latency_sum: float = 0.0


class MemoryController:
    """One channel's controller over all its ranks and banks."""

    def __init__(
        self,
        config: SystemConfig,
        scheme: Scheme,
        schedule: Callable[[float, Callable[[float], None]], None],
    ) -> None:
        self.config = config
        self.scheme = scheme
        self.schedule = schedule
        self.timing = MemoryTiming.from_params(config.memory, config.cpu)
        memory = config.memory
        self._bank_free: dict[tuple[int, int, int], float] = {}
        self._bank_read_q: dict[tuple[int, int, int], deque[PendingRead]] = {}
        self._bank_busy: dict[tuple[int, int, int], bool] = {}
        for channel in range(memory.channels):
            for rank in range(memory.ranks_per_channel):
                for bank in range(memory.banks_per_rank):
                    key = (channel, rank, bank)
                    self._bank_free[key] = 0.0
                    self._bank_read_q[key] = deque()
                    self._bank_busy[key] = False
        # Pump constraint: per rank, the outstanding write phases'
        # concurrent RESETs may not exceed the current budget (23 mA /
        # 90 uA = 256 bit-RESETs).  Each entry is (end_time, resets).
        self._pump_active: dict[tuple[int, int], list[tuple[float, int]]] = {
            (c, r): []
            for c in range(memory.channels)
            for r in range(memory.ranks_per_channel)
        }
        self._write_q: deque[PendingWrite] = deque()
        self._write_capacity = memory.write_queue_entries
        self._burst = False
        self._waiting_reads = 0
        self._write_waiters: deque[Callable[[float], None]] = deque()
        self.stats = ControllerStats()
        pump = config.pump
        self._charge_latency = (
            pump.t_charge * scheme.overheads.pump_charge_latency_factor
        )
        self._reset_budget = int(
            pump.max_concurrent_writes * scheme.overheads.write_current_factor
        )

    # -- public interface ---------------------------------------------------------

    def submit_read(
        self,
        now: float,
        location: LineLocation,
        on_complete: Callable[[float], None],
    ) -> None:
        """Queue a line read; ``on_complete(finish_time)`` fires later."""
        request = PendingRead(arrival=now, location=location, on_complete=on_complete)
        self._bank_read_q[location.global_bank].append(request)
        self._waiting_reads += 1
        self._dispatch(location.global_bank, now + self.timing.mc_to_bank)

    def try_submit_write(
        self, now: float, location: LineLocation, result: LineWriteResult
    ) -> bool:
        """Queue a line write; False if the queue is full (backpressure).

        A rejected caller may register with :meth:`notify_write_space`.
        """
        if len(self._write_q) >= self._write_capacity:
            return False
        self._write_q.append(
            PendingWrite(arrival=now, location=location, result=result)
        )
        if len(self._write_q) >= self._write_capacity:
            # Queue just filled: enter write-burst mode and push every
            # bank to start draining [35].
            self._burst = True
            self.stats.write_bursts += 1
            for key in self._bank_free:
                self._dispatch(key, now)
        elif self._waiting_reads == 0:
            self._dispatch(location.global_bank, now + self.timing.mc_to_bank)
        return True

    def notify_write_space(self, waiter: Callable[[float], None]) -> None:
        """Call ``waiter(time)`` when a write-queue slot frees up."""
        self._write_waiters.append(waiter)

    def drain(self, now: float) -> None:
        """Force all queued writes to issue (end of simulation)."""
        self._burst = bool(self._write_q)
        for key in self._bank_free:
            self._dispatch(key, now)

    @property
    def write_queue_depth(self) -> int:
        return len(self._write_q)

    # -- scheduling core --------------------------------------------------------------

    def _dispatch(self, bank_key: tuple[int, int, int], now: float) -> None:
        """Issue the next command for a bank if it is idle."""
        if self._bank_busy[bank_key]:
            return
        start_floor = max(now, self._bank_free[bank_key])
        read_q = self._bank_read_q[bank_key]
        if read_q and not self._burst:
            self._issue_read(bank_key, read_q.popleft(), start_floor)
            return
        if self._write_q and (self._burst or self._waiting_reads == 0):
            write = self._next_write_for(bank_key)
            if write is not None:
                self._issue_write(bank_key, write, start_floor)
                return
        if read_q and self._burst:
            # Reads wait out the burst; the bank-free event of the last
            # burst write re-dispatches them.
            return

    def _next_write_for(
        self, bank_key: tuple[int, int, int]
    ) -> PendingWrite | None:
        for index, write in enumerate(self._write_q):
            if write.location.global_bank == bank_key:
                del self._write_q[index]
                return write
        return None

    def _issue_read(
        self, bank_key: tuple[int, int, int], request: PendingRead, start: float
    ) -> None:
        self._waiting_reads -= 1
        begin = max(start, request.arrival + self.timing.mc_to_bank)
        finish_bank = begin + self.timing.read_service
        completion = finish_bank + self.timing.bus_transfer
        self._occupy(bank_key, begin, finish_bank)
        stats = self.stats
        stats.reads += 1
        stats.read_latency_sum += completion - request.arrival
        request.on_complete(completion)

    def _issue_write(
        self, bank_key: tuple[int, int, int], write: PendingWrite, start: float
    ) -> None:
        pump_key = bank_key[:2]
        result = write.result
        phases = max(
            1, -(-result.concurrent_resets // max(1, self._reset_budget))
        )
        begin = max(start, write.arrival + self.timing.mc_to_bank)
        begin = self._pump_admission(
            pump_key, begin, min(result.concurrent_resets, self._reset_budget)
        )
        begin += self._charge_latency
        # Over-budget writes split the RESET phase only; the SET phase
        # runs once regardless.
        duration = result.latency + (phases - 1) * result.reset_latency
        finish = begin + duration
        self._pump_active[pump_key].append(
            (finish, min(result.concurrent_resets, self._reset_budget))
        )
        self._occupy(bank_key, begin, finish + self.timing.write_to_read)
        stats = self.stats
        stats.writes += 1
        stats.pump_charges += 1
        stats.write_phases += phases
        stats.reset_bits += result.reset_bits
        stats.set_bits += result.set_bits
        stats.extra_resets += result.extra_resets
        stats.extra_sets += result.extra_sets
        stats.reset_energy_j += result.reset_energy
        stats.set_energy_j += result.set_energy
        stats.write_latency_sum += duration
        if self._burst and not self._write_q:
            # Burst over: banks that parked their reads during the burst
            # may be idle with nothing scheduled -- wake them all.
            self._burst = False
            for key in self._bank_free:
                if key != bank_key and not self._bank_busy[key]:
                    self.schedule(
                        begin, lambda now, k=key: self._dispatch(k, now)
                    )
        if self._write_waiters:
            # A queue slot freed the moment this write left the queue.
            self._write_waiters.popleft()(begin)

    def _pump_admission(
        self, pump_key: tuple[int, int], begin: float, resets: int
    ) -> float:
        """Earliest time the rank's pump can source ``resets`` more bits.

        Completed phases are retired; while the active phases' RESET
        currents leave no headroom, the start slips to the next phase
        completion.
        """
        active = self._pump_active[pump_key]
        budget = max(1, self._reset_budget)
        while True:
            active[:] = [(end, r) for end, r in active if end > begin]
            in_use = sum(r for _, r in active)
            if in_use + resets <= budget or not active:
                return begin
            begin = max(begin, min(end for end, _ in active))

    def _occupy(
        self, bank_key: tuple[int, int, int], begin: float, until: float
    ) -> None:
        self._bank_busy[bank_key] = True
        self._bank_free[bank_key] = until
        self.stats.busy_time += until - begin

        def on_free(now: float, key=bank_key) -> None:
            self._bank_busy[key] = False
            self._dispatch(key, now)

        self.schedule(until, on_free)
