"""Memory timing derivation (Table III).

Collects the DDR4-NVDIMM-P-style timing parameters into the composite
latencies the controller schedules with: the read service time of a
bank, the bus transfer time of a 64B line, and the controller-to-bank
command flight time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CpuParams, MemoryParams

__all__ = ["MemoryTiming"]


@dataclass(frozen=True)
class MemoryTiming:
    """Composite service times (seconds) derived from Table III."""

    mc_to_bank: float  # command flight time, MC to bank
    read_service: float  # bank occupancy of one read (tRCD + tCL)
    bus_transfer: float  # 64B over the 64-bit channel
    write_to_read: float  # tWTR turnaround
    write_command: float  # tCWD command-to-data for writes

    @classmethod
    def from_params(cls, memory: MemoryParams, cpu: CpuParams) -> "MemoryTiming":
        cycle = cpu.cycle_s
        beats = memory.line_bytes / 8  # 64-bit channel: 8 bytes per beat
        bus_transfer = beats / (memory.bus_mhz * 1e6 * 2)  # DDR: 2 beats/cycle
        return cls(
            mc_to_bank=memory.mc_to_bank_cycles * cycle,
            read_service=memory.t_rcd + memory.t_cl,
            bus_transfer=bus_transfer,
            write_to_read=memory.t_wtr,
            write_command=memory.t_cwd,
        )

    @property
    def read_latency(self) -> float:
        """Unloaded read latency seen by the requester."""
        return self.mc_to_bank + self.read_service + self.bus_transfer
