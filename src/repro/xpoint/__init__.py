"""Array micro-architecture layer: full-array voltage / latency /
endurance maps built on the circuit substrate."""

from .read_margin import ReadMarginReport, read_margin_report, read_voltage_map
from .vmap import ArrayIRModel, get_ir_model

__all__ = [
    "ArrayIRModel",
    "get_ir_model",
    "ReadMarginReport",
    "read_margin_report",
    "read_voltage_map",
]
