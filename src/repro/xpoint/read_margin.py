"""Read-path margin analysis (§II-B's claim: read sneak is benign).

Reads drive the selected WL to ``Vread = 1.8 V`` and sense the current
change on the selected BL with every unselected line grounded (Fig. 2).
The read current is tiny (8.2 uA per Table III), so the wire drop along
the worst path is a few percent of ``Vread`` — which is exactly why the
paper can focus its techniques on RESETs.  This module quantifies that
claim and flags configurations (huge arrays, very resistive wires)
where it stops holding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..units import uA

__all__ = ["ReadMarginReport", "read_voltage_map", "read_margin_report"]

READ_CURRENT = uA(8.2)
"""Cell read current (Table III)."""

MIN_SENSE_MARGIN = 0.80
"""Fraction of Vread that must survive the wire drop for the sense
amplifier to resolve LRS vs HRS reliably."""


@dataclass(frozen=True)
class ReadMarginReport:
    """Worst-case read-path summary for one array configuration."""

    v_read: float
    worst_effective: float  # effective read voltage at the far corner
    worst_drop_fraction: float  # of Vread
    sense_ok: bool


def read_voltage_map(config: SystemConfig) -> np.ndarray:
    """Effective read voltage of every cell, shape (A, A).

    The read current is orders of magnitude below the RESET current and
    unselected lines are grounded, so the drop is the ohmic wire drop of
    the read current along the selected WL and BL — no nonlinear solve
    is needed (validated against the paper's observation that read sneak
    is insignificant for main-memory-sized arrays [1, 8, 13]).
    """
    a = config.array.size
    r_wire = config.array.r_wire
    rows = np.arange(a, dtype=float)
    cols = np.arange(a, dtype=float)
    path_cells = rows[:, None] + cols[None, :] + 2.0
    return config.cell.v_read - READ_CURRENT * r_wire * path_cells


def read_margin_report(config: SystemConfig) -> ReadMarginReport:
    """Worst-corner read margin (the paper's §II-B sanity check)."""
    v_map = read_voltage_map(config)
    worst = float(v_map.min())
    v_read = config.cell.v_read
    drop_fraction = (v_read - worst) / v_read
    return ReadMarginReport(
        v_read=v_read,
        worst_effective=worst,
        worst_drop_fraction=float(drop_fraction),
        sense_ok=bool(worst >= MIN_SENSE_MARGIN * v_read),
    )
