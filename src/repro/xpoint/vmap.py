"""Effective-voltage / latency / endurance maps over a cross-point MAT.

:class:`ArrayIRModel` is the facade the rest of the library consumes.
It combines

* the distributed reduced solver (:mod:`repro.circuit.line_model`) for
  the bit-line drop profile — solved on a sparse row grid per distinct
  applied voltage and interpolated, then cached, and
* the analytic word-line model (:mod:`repro.circuit.equivalent`),
  auto-calibrated against the reduced solver at construction,

into vectorised full-array maps: ``v_eff_map`` reproduces Fig. 4b /
6b / 11b, ``latency_map`` Fig. 4c / 6c / 11c / 13a, and
``endurance_map`` Fig. 4d / 6d / 11d / 13b.

Applied voltage may be a scalar (static Vrst), a per-row vector (DRVR
row sections) or a full per-cell matrix (UDRVR column levels stacked on
DRVR sections).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING, Any

import numpy as np

from .. import obs
from ..circuit.cell import CellModel
from ..circuit.crosspoint import BASELINE_BIAS, BiasScheme
from ..circuit.equivalent import WordlineDropModel
from ..circuit.line_model import ReducedArrayModel
from ..circuit.network import ConvergenceError
from ..config import SystemConfig, config_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.model import FaultModel

__all__ = [
    "ArrayIRModel",
    "ModelCache",
    "ProfileRegistry",
    "get_ir_model",
    "profile_registry",
]

_PROFILE_SAMPLES = 13
_VOLTAGE_QUANTUM = 0.02  # cache key resolution for applied voltages
_SEED_QUANTA = 16  # continuation-seed store depth per bias scheme


class ProfileRegistry:
    """Process-wide registry of solved profile artefacts.

    Entries are keyed by the same canonical part tuples the persistent
    :class:`~repro.engine.cache.ProfileStore` uses — config hash, solver
    name, fault token, and the artefact-specific tail (voltage quantum,
    bias scheme) — so a profile solved by any :class:`ArrayIRModel` in
    this process is visible to every later model with an equal key, even
    across distinct :class:`ModelCache` instances.

    The export buffer records entries first *computed* here (as opposed
    to absorbed or loaded): pool workers drain it after each task so the
    parent executor can ship worker-solved profiles back and absorb them
    (see :mod:`repro.engine.executor`), closing the loop that otherwise
    makes every worker re-solve the same profiles.

    When a :class:`~repro.engine.shm.SharedProfilePlane` is attached
    (:meth:`attach_shared`), locally solved entries publish straight
    into the shared segment instead of queuing for ship-back — siblings
    read them zero-copy — and the export buffer only fills when the
    plane declines a write (lock timeout, stripe full), preserving the
    ship-back path as the strict fallback.
    """

    def __init__(self, maxsize: int = 512, max_exports: int = 256) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self._exports: deque[tuple[tuple, Any]] = deque(maxlen=max_exports)
        self._shared = None  # SharedProfilePlane | None
        self._digests: dict[tuple, str] = {}  # parts -> shared-plane key
        #: Monotonic count of locally *computed* artefacts registered
        #: here (``export=True`` inserts).  Promotions — disk hits,
        #: shared-plane hits, absorbed ship-backs — don't count, so a
        #: before/after delta measures real solver work, which is what
        #: :func:`repro.mc.ensemble.run_ensemble` reports as
        #: ``quanta_solved``.
        self.stores = 0

    # -- shared-plane attachment -------------------------------------------------

    def attach_shared(self, plane: Any) -> None:
        """Route puts/gets through ``plane`` (a ``SharedProfilePlane``)."""
        self._shared = plane
        self._digests.clear()

    def detach_shared(self, plane: Any = None) -> None:
        """Drop the shared plane (only if it is ``plane``, when given).

        The owner-check mirrors ``uninstall_coalescer``: a backend
        closing late must not detach a plane a newer backend attached.
        """
        if plane is None or self._shared is plane:
            self._shared = None
            self._digests.clear()

    @property
    def shared_plane(self) -> Any:
        return self._shared

    def _digest(self, parts: tuple) -> str:
        """The shared-plane key for ``parts`` (the ProfileStore digest)."""
        key = self._digests.get(parts)
        if key is None:
            from ..engine.cache import cache_key

            if len(self._digests) >= 4096:
                self._digests.clear()
            key = cache_key("profile", *parts)
            self._digests[parts] = key
        return key

    # -- local entries -----------------------------------------------------------

    def get(self, parts: tuple) -> Any:
        value = self._entries.get(parts)
        if value is not None:
            self._entries.move_to_end(parts)
        return value

    def shared_get(self, parts: tuple) -> Any:
        """Probe the shared plane and promote a hit into local entries."""
        shared = self._shared
        if shared is None:
            return None
        value = shared.get(self._digest(parts))
        if value is None:
            return None
        obs.count("profile_cache.shared_hit")
        # Promote without re-publishing: the block already lives in the
        # segment, and republishing would misread as a duplicate solve.
        self.put(parts, value, export=False, publish=False)
        return value

    def put(
        self,
        parts: tuple,
        value: Any,
        export: bool = True,
        publish: bool = True,
    ) -> None:
        if parts in self._entries:
            self._entries.move_to_end(parts)
            return
        self._entries[parts] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        if export:
            self.stores += 1
        shared = self._shared
        if shared is not None and publish:
            status = shared.put(self._digest(parts), value)
            if export:
                if status == "duplicate":
                    # This process solved an artefact a sibling had
                    # already published — exactly the wasted Newton
                    # work the plane exists to eliminate.
                    obs.count("profile_cache.duplicate_solves")
                elif status == "stored":
                    obs.count("profile_cache.shared_stores")
                else:
                    obs.count("profile_cache.shm_fallbacks")
                    self._exports.append((parts, value))
            return
        if export:
            self._exports.append((parts, value))

    def drain_exports(self) -> tuple[tuple[tuple, Any], ...]:
        """Hand over (and clear) the entries computed since last drain.

        Ship-back payloads are deduped by their full part tuple (config
        hash, solver, fault token, quantum/bias tail): registry eviction
        churn inside one plan can queue the same artefact repeatedly,
        and re-pickling it once per task is pure pipe traffic.  The
        bytes the dedupe saves are counted so the bench can see them.
        """
        if not self._exports:
            return ()
        exports: list[tuple[tuple, Any]] = []
        seen: set[tuple] = set()
        duplicates = 0
        bytes_saved = 0
        for parts, value in self._exports:
            if parts in seen:
                duplicates += 1
                nbytes = getattr(value, "nbytes", None)
                bytes_saved += int(nbytes) if nbytes is not None else 64
                continue
            seen.add(parts)
            exports.append((parts, value))
        self._exports.clear()
        if duplicates:
            obs.count("profile_cache.shipback_deduped", duplicates)
            obs.count("profile_cache.shipback_bytes_saved", bytes_saved)
        return tuple(exports)

    def absorb(self, items: "tuple[tuple[tuple, Any], ...]") -> int:
        """Merge shipped-back entries; absorbed entries never re-export.

        With a shared plane attached (the supervisor's side of the
        process pool), absorbed entries are also published into the
        segment: a profile that arrived via the fallback pipe still
        becomes zero-copy readable to every sibling.
        """
        absorbed = 0
        for parts, value in items:
            if parts not in self._entries:
                self.put(parts, value, export=False)
                absorbed += 1
        return absorbed

    def clear(self) -> None:
        """Drop local entries and pending exports (shared plane stays)."""
        self._entries.clear()
        self._exports.clear()
        self._digests.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Per-process singleton (one per pool worker; the executor merges).
profile_registry = ProfileRegistry()


class ArrayIRModel:
    """IR-drop maps for one array configuration.

    Construct via :func:`get_ir_model` to share cached instances.

    ``faults`` layers a :class:`~repro.faults.model.FaultModel` on top
    of the calibrated solvers: applied voltages droop, per-line wire
    factors scale the BL/WL drops, per-cell LRS spread scales the
    latency map, and stuck cells pin their latency (SA0 -> 0, nothing
    to RESET; SA1 -> inf, never completes) and zero their endurance.
    The underlying solvers stay calibrated at nominal — faults are a
    deterministic analytic layer, so a null model is bit-identical to
    the fault-free path.
    """

    def __init__(
        self,
        config: SystemConfig,
        faults: "FaultModel | None" = None,
        solver: str | None = None,
    ) -> None:
        self.config = config
        self.reduced = ReducedArrayModel(config, solver=solver)
        self.solver = self.reduced.solver
        self.cell_model: CellModel = self.reduced.cell_model
        self.faults = faults if faults is None or not faults.is_null else None
        self._fault_state: tuple | None = None
        # Keyed by the *integer* quantum count (round(v / quantum)), not
        # the quantised float: float keys carry representation noise
        # (0.060000000000000005 vs 0.06), so near-identical voltages
        # could land in distinct buckets and bloat the profile cache.
        self._bl_profiles: dict[tuple[int, BiasScheme], np.ndarray] = {}
        self._wl_model: WordlineDropModel | None = None
        #: Persistent profile layer (a ``ProfileStore``), attached by the
        #: engine's :class:`ModelCache` hookup; ``None`` = memory only.
        self.profile_store = None
        self._profile_tokens: tuple[str, str | None] | None = None
        # Continuation seeds: per bias scheme, the node-voltage vectors
        # of the most recently solved quanta (grid-row order), so the
        # next quantum's Newton solves start next to their solution.
        self._profile_seeds: dict[
            BiasScheme, OrderedDict[int, list[np.ndarray]]
        ] = {}

    def _fault_arrays(self) -> tuple:
        """(sa0, sa1, wl_factors, bl_factors, latency_factors), sampled once."""
        if self._fault_state is None:
            a = self.config.array.size
            sa0, sa1 = self.faults.stuck_masks(a)
            wl_factors, bl_factors = self.faults.line_factors(a)
            self._fault_state = (
                sa0, sa1, wl_factors, bl_factors,
                self.faults.cell_latency_factors(a),
            )
        return self._fault_state

    # -- persistent profile plumbing --------------------------------------------

    def _profile_parts(self, kind: str, *extra: Any) -> tuple:
        """Canonical key parts for one profile artefact.

        The solver name is part of the key so the byte-locked
        ``reference`` backend can never be served an artefact computed
        by an accelerated backend (and vice versa); the fault token
        keeps fault-sweep runs from aliasing the perfect-array entries.
        """
        if self._profile_tokens is None:
            self._profile_tokens = (
                config_hash(self.config),
                None if self.faults is None else config_hash(self.faults),
            )
        cfg_token, faults_token = self._profile_tokens
        return (kind, cfg_token, self.solver, faults_token, *extra)

    def _persist(self, parts: tuple, value: Any) -> None:
        """Write-through to the attached disk store (first write only)."""
        store = self.profile_store
        if store is not None and store.enabled and store.store(parts, value):
            obs.count("profile_cache.disk_store")

    def _lookup_artefact(self, parts: tuple) -> Any:
        """Registry -> shared plane -> disk lookup; validated by caller.

        A shared-plane or disk hit is promoted into the registry
        (without re-export); a registry hit is lazily written through to
        the disk store, which is how worker-shipped profiles reach the
        persistent layer.
        """
        value = profile_registry.get(parts)
        if value is not None:
            obs.count("profile_cache.registry_hit")
            self._persist(parts, value)
            return value
        value = profile_registry.shared_get(parts)
        if value is not None:
            self._persist(parts, value)
            return value
        store = self.profile_store
        if store is None or not store.enabled:
            return None
        value = store.load(parts)
        if value is None:
            return None
        obs.count("profile_cache.disk_hit")
        profile_registry.put(parts, value, export=False)
        return value

    # -- calibration ------------------------------------------------------------

    @property
    def wl_model(self) -> WordlineDropModel:
        """Word-line model, calibrated lazily against the reduced solver.

        The calibration collapses to one float (the distributed sneak
        current ``s``), which is shared through the profile registry and
        the persistent store; a value that fails validation — wrong
        type, non-finite, negative — is treated as a miss and
        recalibrated live.
        """
        if self._wl_model is None:
            parts = self._profile_parts("wl-calibration")
            sneak = self._lookup_artefact(parts)
            if not isinstance(sneak, float) or not (
                np.isfinite(sneak) and sneak >= 0.0
            ):
                if sneak is not None:
                    obs.count("profile_cache.invalid")
                sneak = self._calibrate_wl_sneak()
                profile_registry.put(parts, sneak)
                self._persist(parts, sneak)
            self._wl_model = WordlineDropModel(self.config, sneak)
        return self._wl_model

    def _calibrate_wl_sneak(self) -> float:
        """Live calibration: two far-corner solves -> sneak current."""
        a = self.config.array.size
        v_rst = self.config.cell.v_reset
        with obs.span("calibrate.wl_model", array=a):
            far_corner = self.reduced.solve_reset(a - 1, (a - 1,))
            bl_drop_far = v_rst - self.reduced.solve_reset(
                a - 1, (0,)
            ).v_eff[(a - 1, 0)]
            wl_drop_far = (
                v_rst - far_corner.v_eff[(a - 1, a - 1)] - bl_drop_far
            )
            model = WordlineDropModel.calibrate(
                self.config, max(0.0, wl_drop_far)
            )
        return float(model.sneak_current)

    # -- bit-line profiles --------------------------------------------------------

    def bl_drop_profile(
        self, v_applied: float | None = None, bias: BiasScheme = BASELINE_BIAS
    ) -> np.ndarray:
        """BL voltage drop (V) by row for one applied WD voltage.

        Solved exactly on a sparse row grid (column 0, where the WL drop
        is negligible) and linearly interpolated; cached per quantised
        voltage and bias scheme.  Lookup order is in-memory memo, then
        the process-wide :data:`profile_registry`, then the persistent
        disk store, then a live solve (continuation-seeded from the
        nearest already-solved voltage on accelerated backends).

        The returned array is **read-only**: it is shared between every
        caller of this quantum (and, through the registry and disk
        layers, across models and processes), so an in-place mutation
        would silently corrupt all of them.  Copy before editing.
        """
        a = self.config.array.size
        if v_applied is None:
            v_applied = self.config.cell.v_reset
        quantum = int(round(v_applied / _VOLTAGE_QUANTUM))
        key = (quantum, bias)
        cached = self._bl_profiles.get(key)
        if cached is not None:
            obs.count("profile_cache.hit")
            return cached
        obs.count("profile_cache.miss")
        parts = self._profile_parts(
            "bl-profile", quantum, _VOLTAGE_QUANTUM, _PROFILE_SAMPLES, bias
        )
        profile = self._validated_profile(self._lookup_artefact(parts), a)
        if profile is None:
            profile = self._solve_profile(quantum, bias)
            profile.setflags(write=False)
            profile_registry.put(parts, profile)
            self._persist(parts, profile)
        self._bl_profiles[key] = profile
        return profile

    def ensemble_bl_profiles(
        self,
        v_applied: "np.ndarray | list[float]",
        bias: BiasScheme = BASELINE_BIAS,
        chunk: int | None = None,
    ) -> "dict[int, np.ndarray]":
        """BL drop profiles for many applied voltages at once.

        The Monte Carlo engine's entry point: the distinct voltage
        quanta of ``v_applied`` are resolved through the same
        memo/registry/disk chain as :meth:`bl_drop_profile`, and every
        *missing* quantum's sample-row grid is solved in one flat
        ensemble batch (``solve_reset_ensemble``) — the networks all
        share one sparsity pattern, so the ``batched`` backend
        factorises once per chord refresh for the whole ensemble
        instead of once per quantum.  Solved profiles land in the
        shared registry and the persistent store under the exact keys
        the single-voltage path uses, so nominal models get free hits
        afterwards.  Returns ``{quantum: read-only profile}``.
        """
        a = self.config.array.size
        quanta = sorted(
            {int(round(float(v) / _VOLTAGE_QUANTUM)) for v in np.atleast_1d(v_applied)}
        )
        profiles: dict[int, np.ndarray] = {}
        missing: list[int] = []
        for q in quanta:
            key = (q, bias)
            cached = self._bl_profiles.get(key)
            if cached is not None:
                obs.count("profile_cache.hit")
                profiles[q] = cached
                continue
            obs.count("profile_cache.miss")
            parts = self._profile_parts(
                "bl-profile", q, _VOLTAGE_QUANTUM, _PROFILE_SAMPLES, bias
            )
            cached = self._validated_profile(self._lookup_artefact(parts), a)
            if cached is not None:
                self._bl_profiles[key] = cached
                profiles[q] = cached
            else:
                missing.append(q)
        if not missing:
            return profiles
        grid = np.unique(
            np.round(np.linspace(0, a - 1, min(_PROFILE_SAMPLES, a))).astype(int)
        )
        jobs = [
            (int(row), (0,), q * _VOLTAGE_QUANTUM) for q in missing for row in grid
        ]
        with obs.span("solve.profile.ensemble", array=a, quanta=len(missing)):
            pairs = self.reduced.solve_reset_ensemble(jobs, bias, chunk=chunk)
        for j, q in enumerate(missing):
            v_solve = q * _VOLTAGE_QUANTUM
            block = pairs[j * len(grid) : (j + 1) * len(grid)]
            drops = [
                v_solve - solution.v_eff[(int(row), 0)]
                for row, (solution, _voltages) in zip(grid, block)
            ]
            profile = np.interp(np.arange(a), grid, np.asarray(drops))
            profile.setflags(write=False)
            parts = self._profile_parts(
                "bl-profile", q, _VOLTAGE_QUANTUM, _PROFILE_SAMPLES, bias
            )
            profile_registry.put(parts, profile)
            self._persist(parts, profile)
            self._bl_profiles[(q, bias)] = profile
            profiles[q] = profile
        return profiles

    @staticmethod
    def _validated_profile(value: Any, a: int) -> "np.ndarray | None":
        """A shared/persisted profile, or ``None`` if it fails validation.

        The disk envelope's checksum catches bit rot, but not a stale or
        colliding entry that unpickles cleanly into the wrong shape —
        those must read as a miss (recompute live), never as a crash or
        a silently wrong map.
        """
        if value is None:
            return None
        if (
            not isinstance(value, np.ndarray)
            or value.shape != (a,)
            or not np.all(np.isfinite(value))
        ):
            obs.count("profile_cache.invalid")
            return None
        profile = value.astype(float, copy=False)
        profile.setflags(write=False)
        return profile

    def _solve_profile(self, quantum: int, bias: BiasScheme) -> np.ndarray:
        """Live grid solve of one quantised voltage (with warm seeds)."""
        a = self.config.array.size
        v_solve = quantum * _VOLTAGE_QUANTUM
        grid = np.unique(
            np.round(np.linspace(0, a - 1, min(_PROFILE_SAMPLES, a))).astype(int)
        )
        selections = [(int(row), (0,)) for row in grid]
        seeds = self._continuation_seeds(quantum, bias, len(selections))
        with obs.span("solve.profile", array=a):
            # One batch covers the whole grid: backends that stack
            # solves (``batched``) factorise once per Newton iteration
            # for all sample rows instead of once per row.
            try:
                pairs = self.reduced.solve_reset_batch(
                    selections, v_solve, bias, initials=seeds
                )
            except ConvergenceError:
                if seeds is None:
                    raise
                # The backends already retry a failed seeded solve from
                # a cold start; an error surfacing here means even that
                # failed, so the guaranteed fallback is one more fully
                # unseeded batch before giving up.
                obs.count("profile_cache.seed_fallbacks")
                pairs = self.reduced.solve_reset_batch(selections, v_solve, bias)
            # Drops are measured against the *quantised* solve voltage,
            # keeping the profile a pure function of its cache key: two
            # raw voltages landing in the same bucket must produce the
            # same bytes, or the registry/disk layers would serve
            # whichever caller happened to fill the bucket first.
            drops = [
                v_solve - solution.v_eff[(int(row), 0)]
                for row, (solution, _voltages) in zip(grid, pairs)
            ]
        self._remember_seeds(quantum, bias, [v for _sol, v in pairs])
        return np.interp(np.arange(a), grid, np.asarray(drops))

    def _continuation_seeds(
        self, quantum: int, bias: BiasScheme, count: int
    ) -> "list[np.ndarray] | None":
        """Node-voltage seeds from the nearest already-solved quantum.

        The ``reference`` backend must never be seeded: its payloads are
        byte-locked to the cold flat-start Newton trajectory.
        """
        if self.solver == "reference":
            return None
        store = self._profile_seeds.get(bias)
        if not store:
            return None
        nearest = min(store, key=lambda q: abs(q - quantum))
        seeds = store[nearest]
        if len(seeds) != count:
            return None
        obs.count("profile_cache.continuation_seeds")
        return [seed.copy() for seed in seeds]

    def _remember_seeds(
        self, quantum: int, bias: BiasScheme, voltages: "list[np.ndarray]"
    ) -> None:
        if self.solver == "reference":
            return
        store = self._profile_seeds.setdefault(bias, OrderedDict())
        store[quantum] = [np.array(v, dtype=float) for v in voltages]
        store.move_to_end(quantum)
        while len(store) > _SEED_QUANTA:
            store.popitem(last=False)

    # -- point queries --------------------------------------------------------------

    def v_eff(
        self,
        row: int,
        col: int,
        v_applied: float | None = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> float:
        """Effective RESET voltage of one cell under an N-bit RESET."""
        if v_applied is None:
            v_applied = self.config.cell.v_reset
        if self.faults is not None:
            v_applied = float(self.faults.applied_voltage(v_applied))
        bl = float(self.bl_drop_profile(v_applied, bias)[row])
        wl = float(self.wl_model.drop(col, n_bits, bias))
        if self.faults is not None:
            _, _, wl_factors, bl_factors, _ = self._fault_arrays()
            bl *= float(bl_factors[col])
            wl *= float(wl_factors[row])
        return v_applied - bl - wl

    def reset_latency(
        self,
        row: int,
        col: int,
        v_applied: float | None = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> float:
        """RESET latency (s) of one cell under an N-bit RESET."""
        latency = float(
            self.cell_model.reset_latency(
                self.v_eff(row, col, v_applied, n_bits, bias)
            )
        )
        if self.faults is not None:
            sa0, sa1, _, _, cell_factors = self._fault_arrays()
            if sa0[row, col]:
                return 0.0
            if sa1[row, col]:
                return float("inf")
            latency *= float(cell_factors[row, col])
        return latency

    # -- full-array maps ---------------------------------------------------------------

    def applied_matrix(
        self, v_applied: "float | np.ndarray | None"
    ) -> np.ndarray:
        """Broadcast an applied-voltage spec to a full (A, A) matrix.

        Accepts a scalar (static Vrst), an (A,) vector read as per-row
        levels (DRVR sections), or a full (A, A) matrix (UDRVR).
        """
        a = self.config.array.size
        if v_applied is None:
            v_applied = self.config.cell.v_reset
        v = np.asarray(v_applied, dtype=float)
        if v.ndim == 0:
            return np.full((a, a), float(v))
        if v.shape == (a,):
            return np.repeat(v[:, None], a, axis=1)
        if v.shape == (a, a):
            return v.copy()
        raise ValueError(
            f"applied voltage must be scalar, ({a},) or ({a}, {a}); got {v.shape}"
        )

    def v_eff_map(
        self,
        v_applied: "float | np.ndarray | None" = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> np.ndarray:
        """Effective RESET voltage of every cell, shape (A, A)."""
        a = self.config.array.size
        v = self.applied_matrix(v_applied)
        if self.faults is not None:
            v = np.asarray(self.faults.applied_voltage(v))
        bl_drop = np.empty_like(v)
        # Group cells by integer quantum count, mirroring the profile
        # cache's keys: comparing integers is exact, whereas comparing
        # re-quantised floats can split one bucket on representation
        # noise (see ``_bl_profiles``).
        quanta = np.rint(v / _VOLTAGE_QUANTUM)
        for q in np.unique(quanta):
            profile = self.bl_drop_profile(float(q) * _VOLTAGE_QUANTUM, bias)
            mask = quanta == q
            bl_drop[mask] = np.repeat(profile[:, None], a, axis=1)[mask]
        wl_drop = np.asarray(self.wl_model.drop(np.arange(a), n_bits, bias))
        if self.faults is None:
            return v - bl_drop - wl_drop[None, :]
        _, _, wl_factors, bl_factors, _ = self._fault_arrays()
        # A line's resistance factor scales its whole IR-drop profile:
        # bit line c contributes its BL drop scaled by bl_factors[c], and
        # selected word line r its WL drop scaled by wl_factors[r].
        return (
            v
            - bl_drop * bl_factors[None, :]
            - wl_drop[None, :] * wl_factors[:, None]
        )

    def latency_map(
        self,
        v_applied: "float | np.ndarray | None" = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> np.ndarray:
        """Per-cell RESET latency (s), shape (A, A) (Fig. 4c family)."""
        latency = np.asarray(
            self.cell_model.reset_latency(self.v_eff_map(v_applied, n_bits, bias))
        )
        if self.faults is not None:
            sa0, sa1, _, _, cell_factors = self._fault_arrays()
            latency = latency * cell_factors
            latency[sa0] = 0.0  # stuck at HRS: nothing to RESET
            latency[sa1] = np.inf  # stuck at LRS: RESET never completes
        return latency

    def endurance_map(
        self,
        v_applied: "float | np.ndarray | None" = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> np.ndarray:
        """Per-cell write endurance, shape (A, A) (Fig. 4d family)."""
        endurance = np.asarray(
            self.cell_model.endurance(self.latency_map(v_applied, n_bits, bias))
        )
        if self.faults is not None:
            sa0, sa1, *_ = self._fault_arrays()
            endurance[sa0 | sa1] = 0.0  # stuck cells store nothing
        return endurance

    def array_reset_latency(
        self,
        v_applied: "float | np.ndarray | None" = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> float:
        """Array RESET latency: the slowest finite cell RESET."""
        latency = self.latency_map(v_applied, n_bits, bias)
        finite = latency[np.isfinite(latency)]
        if finite.size == 0:
            return float("inf")
        return float(finite.max())


class ModelCache:
    """Bounded LRU cache of :class:`ArrayIRModel` instances.

    Keyed by :func:`repro.config.config_hash`, so structurally equal
    configurations share one model regardless of object identity or the
    per-process ``hash()`` salt.  An engine
    :class:`~repro.engine.context.RunContext` carries its own instance;
    the module-level :func:`get_ir_model` delegates to a shared default.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, ArrayIRModel] = OrderedDict()

    @staticmethod
    def _key(
        config: SystemConfig,
        faults: "FaultModel | None",
        solver: str | None = None,
    ) -> str:
        """Compound cache key: a fault sweep never poisons (or reuses)
        the perfect-array entry, and models running different solver
        backends never alias.  The default (reference) backend adds no
        token, preserving historical keys."""
        from ..circuit.solvers import solver_name

        key = config_hash(config)
        if faults is not None:
            key = f"{key}:{config_hash(faults)}"
        solver = solver_name(solver)
        if solver != "reference":
            key = f"{key}:solver={solver}"
        return key

    def _insert(self, key: str, model: ArrayIRModel) -> None:
        """Insert (or refresh) ``key`` and evict the coldest overflow.

        A key already resident is refreshed in place — recency bumped,
        value replaced — and never triggers an eviction: the cache does
        not grow, so evicting on a re-insert at capacity would throw
        away a warm entry for nothing.
        """
        if key in self._entries:
            self._entries[key] = model
            self._entries.move_to_end(key)
            return
        self._entries[key] = model
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            obs.count("model_cache.evict")

    def get(
        self,
        config: SystemConfig,
        faults: "FaultModel | None" = None,
        solver: str | None = None,
        profile_store=None,
    ) -> ArrayIRModel:
        """The cached model for ``(config, faults, solver)``.

        ``profile_store`` (a :class:`~repro.engine.cache.ProfileStore`)
        attaches the persistent profile layer; it is (re-)attached on
        hits too, so a model built before the store existed gains it.
        """
        if faults is not None and faults.is_null:
            faults = None
        key = self._key(config, faults, solver)
        model = self._entries.get(key)
        if model is not None:
            obs.count("model_cache.hit")
            self._entries.move_to_end(key)
            if profile_store is not None:
                model.profile_store = profile_store
            return model
        obs.count("model_cache.miss")
        model = ArrayIRModel(config, faults=faults, solver=solver)
        if profile_store is not None:
            model.profile_store = profile_store
        self._insert(key, model)
        return model

    def put(
        self,
        config: SystemConfig,
        model: ArrayIRModel,
        faults: "FaultModel | None" = None,
        solver: str | None = None,
    ) -> None:
        """Seed the cache with a pre-built model (e.g. deserialised from
        a worker); follows the same residency/recency rules as misses."""
        if faults is not None and faults.is_null:
            faults = None
        self._insert(self._key(config, faults, solver), model)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_DEFAULT_CACHE = ModelCache()


def get_ir_model(
    config: SystemConfig, solver: str | None = None
) -> ArrayIRModel:
    """Shared, memoised :class:`ArrayIRModel` per configuration."""
    return _DEFAULT_CACHE.get(config, solver=solver)
