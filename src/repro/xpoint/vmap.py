"""Effective-voltage / latency / endurance maps over a cross-point MAT.

:class:`ArrayIRModel` is the facade the rest of the library consumes.
It combines

* the distributed reduced solver (:mod:`repro.circuit.line_model`) for
  the bit-line drop profile — solved on a sparse row grid per distinct
  applied voltage and interpolated, then cached, and
* the analytic word-line model (:mod:`repro.circuit.equivalent`),
  auto-calibrated against the reduced solver at construction,

into vectorised full-array maps: ``v_eff_map`` reproduces Fig. 4b /
6b / 11b, ``latency_map`` Fig. 4c / 6c / 11c / 13a, and
``endurance_map`` Fig. 4d / 6d / 11d / 13b.

Applied voltage may be a scalar (static Vrst), a per-row vector (DRVR
row sections) or a full per-cell matrix (UDRVR column levels stacked on
DRVR sections).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..circuit.cell import CellModel
from ..circuit.crosspoint import BASELINE_BIAS, BiasScheme
from ..circuit.equivalent import WordlineDropModel
from ..circuit.line_model import ReducedArrayModel
from ..config import SystemConfig, config_hash

__all__ = ["ArrayIRModel", "ModelCache", "get_ir_model"]

_PROFILE_SAMPLES = 13
_VOLTAGE_QUANTUM = 0.02  # cache key resolution for applied voltages


class ArrayIRModel:
    """IR-drop maps for one array configuration.

    Construct via :func:`get_ir_model` to share cached instances.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.reduced = ReducedArrayModel(config)
        self.cell_model: CellModel = self.reduced.cell_model
        self._bl_profiles: dict[tuple[float, BiasScheme], np.ndarray] = {}
        self._wl_model: WordlineDropModel | None = None

    # -- calibration ------------------------------------------------------------

    @property
    def wl_model(self) -> WordlineDropModel:
        """Word-line model, calibrated lazily against the reduced solver."""
        if self._wl_model is None:
            a = self.config.array.size
            v_rst = self.config.cell.v_reset
            far_corner = self.reduced.solve_reset(a - 1, (a - 1,))
            bl_drop_far = v_rst - self.reduced.solve_reset(a - 1, (0,)).v_eff[
                (a - 1, 0)
            ]
            wl_drop_far = v_rst - far_corner.v_eff[(a - 1, a - 1)] - bl_drop_far
            self._wl_model = WordlineDropModel.calibrate(
                self.config, max(0.0, wl_drop_far)
            )
        return self._wl_model

    # -- bit-line profiles --------------------------------------------------------

    def bl_drop_profile(
        self, v_applied: float | None = None, bias: BiasScheme = BASELINE_BIAS
    ) -> np.ndarray:
        """BL voltage drop (V) by row for one applied WD voltage.

        Solved exactly on a sparse row grid (column 0, where the WL drop
        is negligible) and linearly interpolated; cached per quantised
        voltage and bias scheme.
        """
        a = self.config.array.size
        if v_applied is None:
            v_applied = self.config.cell.v_reset
        key = (round(v_applied / _VOLTAGE_QUANTUM) * _VOLTAGE_QUANTUM, bias)
        cached = self._bl_profiles.get(key)
        if cached is not None:
            return cached
        grid = np.unique(
            np.round(np.linspace(0, a - 1, min(_PROFILE_SAMPLES, a))).astype(int)
        )
        drops = []
        for row in grid:
            solution = self.reduced.solve_reset(int(row), (0,), key[0], bias)
            drops.append(v_applied - solution.v_eff[(int(row), 0)])
        profile = np.interp(np.arange(a), grid, np.asarray(drops))
        self._bl_profiles[key] = profile
        return profile

    # -- point queries --------------------------------------------------------------

    def v_eff(
        self,
        row: int,
        col: int,
        v_applied: float | None = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> float:
        """Effective RESET voltage of one cell under an N-bit RESET."""
        if v_applied is None:
            v_applied = self.config.cell.v_reset
        bl = float(self.bl_drop_profile(v_applied, bias)[row])
        wl = float(self.wl_model.drop(col, n_bits, bias))
        return v_applied - bl - wl

    def reset_latency(
        self,
        row: int,
        col: int,
        v_applied: float | None = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> float:
        """RESET latency (s) of one cell under an N-bit RESET."""
        return float(
            self.cell_model.reset_latency(
                self.v_eff(row, col, v_applied, n_bits, bias)
            )
        )

    # -- full-array maps ---------------------------------------------------------------

    def applied_matrix(
        self, v_applied: "float | np.ndarray | None"
    ) -> np.ndarray:
        """Broadcast an applied-voltage spec to a full (A, A) matrix.

        Accepts a scalar (static Vrst), an (A,) vector read as per-row
        levels (DRVR sections), or a full (A, A) matrix (UDRVR).
        """
        a = self.config.array.size
        if v_applied is None:
            v_applied = self.config.cell.v_reset
        v = np.asarray(v_applied, dtype=float)
        if v.ndim == 0:
            return np.full((a, a), float(v))
        if v.shape == (a,):
            return np.repeat(v[:, None], a, axis=1)
        if v.shape == (a, a):
            return v.copy()
        raise ValueError(
            f"applied voltage must be scalar, ({a},) or ({a}, {a}); got {v.shape}"
        )

    def v_eff_map(
        self,
        v_applied: "float | np.ndarray | None" = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> np.ndarray:
        """Effective RESET voltage of every cell, shape (A, A)."""
        a = self.config.array.size
        v = self.applied_matrix(v_applied)
        rows = np.arange(a)
        bl_drop = np.empty_like(v)
        quantised = np.round(v / _VOLTAGE_QUANTUM) * _VOLTAGE_QUANTUM
        for value in np.unique(quantised):
            profile = self.bl_drop_profile(float(value), bias)
            mask = quantised == value
            bl_drop[mask] = np.repeat(profile[:, None], a, axis=1)[mask]
        wl_drop = np.asarray(self.wl_model.drop(np.arange(a), n_bits, bias))
        return v - bl_drop - wl_drop[None, :]

    def latency_map(
        self,
        v_applied: "float | np.ndarray | None" = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> np.ndarray:
        """Per-cell RESET latency (s), shape (A, A) (Fig. 4c family)."""
        return np.asarray(
            self.cell_model.reset_latency(self.v_eff_map(v_applied, n_bits, bias))
        )

    def endurance_map(
        self,
        v_applied: "float | np.ndarray | None" = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> np.ndarray:
        """Per-cell write endurance, shape (A, A) (Fig. 4d family)."""
        return np.asarray(
            self.cell_model.endurance(self.latency_map(v_applied, n_bits, bias))
        )

    def array_reset_latency(
        self,
        v_applied: "float | np.ndarray | None" = None,
        n_bits: int = 1,
        bias: BiasScheme = BASELINE_BIAS,
    ) -> float:
        """Array RESET latency: the slowest finite cell RESET."""
        latency = self.latency_map(v_applied, n_bits, bias)
        finite = latency[np.isfinite(latency)]
        if finite.size == 0:
            return float("inf")
        return float(finite.max())


class ModelCache:
    """Bounded LRU cache of :class:`ArrayIRModel` instances.

    Keyed by :func:`repro.config.config_hash`, so structurally equal
    configurations share one model regardless of object identity or the
    per-process ``hash()`` salt.  An engine
    :class:`~repro.engine.context.RunContext` carries its own instance;
    the module-level :func:`get_ir_model` delegates to a shared default.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, ArrayIRModel] = OrderedDict()

    def get(self, config: SystemConfig) -> ArrayIRModel:
        """The cached model for ``config``, building it on first use."""
        key = config_hash(config)
        model = self._entries.get(key)
        if model is None:
            model = ArrayIRModel(config)
            self._entries[key] = model
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(key)
        return model

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_DEFAULT_CACHE = ModelCache()


def get_ir_model(config: SystemConfig) -> ArrayIRModel:
    """Shared, memoised :class:`ArrayIRModel` per configuration."""
    return _DEFAULT_CACHE.get(config)
