"""Blocking client for the ``python -m repro serve`` service.

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.engine.service` over a plain TCP socket.  It is
deliberately synchronous — callers that want concurrency open one
client per thread (sockets are cheap; the service multiplexes) or use
:func:`submit_many`, which fans a batch of requests out over a thread
pool and is what the benchmark harness and the CI smoke test drive
saturation with.

Example::

    from repro.client import ServiceClient

    with ServiceClient(port=7327) as client:
        doc = client.run("fig04", solver="batched")
        payload = doc["result"]["payload"]
"""

from __future__ import annotations

import json
import socket
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

__all__ = ["ServiceClient", "ServiceError", "submit_many"]


class ServiceError(RuntimeError):
    """A request the service answered with ``ok: false``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class ServiceClient:
    """One connection to a running repro service.

    A client instance is *not* thread-safe: each request writes a line
    and blocks for the next response line, so interleaving two threads
    on one socket would cross-deliver responses.  Use one client per
    thread (see :func:`submit_many`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7327,
        timeout_s: "float | None" = 300.0,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._reader = self._sock.makefile("rb")
        self._request_id = 0

    # -- protocol ----------------------------------------------------------------

    def request(self, doc: dict) -> dict:
        """Send one request document and block for its response."""
        self._request_id += 1
        doc = {"id": self._request_id, **doc}
        self._sock.sendall(
            json.dumps(doc, separators=(",", ":")).encode() + b"\n"
        )
        line = self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", "unknown"), error.get("message", "")
            )
        return response

    # -- operations --------------------------------------------------------------

    def run(
        self,
        experiment: str,
        seed: int = 0,
        solver: "str | None" = None,
        quick: bool = False,
        benchmarks: "Sequence[str] | None" = None,
        fault_rate: "float | None" = None,
        deadline_s: "float | None" = None,
        no_cache: bool = False,
    ) -> dict:
        """Run an experiment; returns the full response document.

        The interesting part is ``response["result"]`` — the same
        ``{experiment, meta, payload}`` document a batch ``--json`` run
        writes.  Raises :class:`ServiceError` on rejection, deadline
        expiry, or failure.
        """
        doc: dict[str, Any] = {"op": "run", "experiment": experiment}
        if seed:
            doc["seed"] = seed
        if solver is not None:
            doc["solver"] = solver
        if quick:
            doc["quick"] = True
        if benchmarks is not None:
            doc["benchmarks"] = list(benchmarks)
        if fault_rate is not None:
            doc["fault_rate"] = fault_rate
        if deadline_s is not None:
            doc["deadline_s"] = deadline_s
        if no_cache:
            doc["no_cache"] = True
        return self.request(doc)

    def ping(self) -> bool:
        """Liveness probe; ``True`` when the service answers."""
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict:
        """The service's observability snapshot (see ``EngineService.stats``)."""
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the service to drain and exit."""
        self.request({"op": "shutdown"})

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def submit_many(
    requests: "Sequence[dict]",
    host: str = "127.0.0.1",
    port: int = 7327,
    concurrency: int = 8,
    timeout_s: "float | None" = 300.0,
) -> "list[dict | Exception]":
    """Fan request documents out over concurrent connections.

    Each worker thread owns its own connection; results come back in
    request order, with failures (:class:`ServiceError`,
    ``ConnectionError``) delivered in-place instead of raised, so one
    rejected request does not hide the other responses.
    """

    def _one(doc: dict) -> dict:
        with ServiceClient(host, port, timeout_s=timeout_s) as client:
            return client.request(doc)

    workers = max(1, min(concurrency, len(requests) or 1))
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-client"
    ) as pool:
        futures = [pool.submit(_one, dict(doc)) for doc in requests]
        results: "list[dict | Exception]" = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 - delivered in-place
                results.append(exc)
    return results
