"""Blocking client for the ``python -m repro serve`` service.

:class:`ServiceClient` speaks the newline-delimited JSON protocol of
:mod:`repro.engine.service` over a plain TCP socket.  It is
deliberately synchronous — callers that want concurrency open one
client per thread (sockets are cheap; the service multiplexes) or use
:func:`submit_many`, which fans a batch of requests out over a thread
pool and is what the benchmark harness and the CI smoke test drive
saturation with.

Retries: transient failures — connection refused (service still
booting or restarting), connection reset (service died mid-request),
and the service's retryable ``unavailable`` error code (load shedding
while its circuit breaker is open) — are retried with exponential
backoff and *full jitter* (each delay is uniform on ``[0, cap]``, so a
thundering herd of clients re-arrives spread out instead of in lock
step).  Every ``run`` request carries an idempotency key (``rid``):
if a retry re-delivers a request the service already executed, the
service replays the recorded response instead of running the
experiment twice, so retrying after a mid-request connection loss is
always safe.

Example::

    from repro.client import ServiceClient

    with ServiceClient(port=7327) as client:
        doc = client.run("fig04", solver="batched")
        payload = doc["result"]["payload"]
"""

from __future__ import annotations

import json
import random
import socket
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["ClientRetry", "ServiceClient", "ServiceError", "submit_many"]

#: Error codes the service marks as transient: the request was *not*
#: executed (shed or failed on infrastructure), so retrying is safe
#: even without an idempotency key.
RETRYABLE_CODES = ("unavailable",)


@dataclass(frozen=True)
class ClientRetry:
    """Client-side retry schedule: exponential backoff with full jitter.

    Attempt ``n`` (0-based) sleeps ``uniform(0, min(cap_s,
    base_s * 2**n))`` before retrying — AWS-style full jitter, which
    minimises synchronised re-arrival when many clients retry at once.
    ``retries=0`` disables retrying entirely.
    """

    retries: int = 4
    base_s: float = 0.05
    cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_s < 0 or self.cap_s < 0:
            raise ValueError("backoff base/cap must be >= 0")

    def delay(self, attempt: int, rng: "random.Random") -> float:
        """The jittered sleep before retry ``attempt`` (0-based)."""
        return rng.uniform(0.0, min(self.cap_s, self.base_s * 2.0**attempt))


class ServiceError(RuntimeError):
    """A request the service answered with ``ok: false``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


class ServiceClient:
    """One connection to a running repro service.

    A client instance is *not* thread-safe: each request writes a line
    and blocks for the next response line, so interleaving two threads
    on one socket would cross-deliver responses.  Use one client per
    thread (see :func:`submit_many`).

    The underlying socket is dialed lazily and redialed transparently:
    a dropped connection is re-established on the next request (subject
    to the retry schedule), so a client outlives service restarts.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7327,
        timeout_s: "float | None" = 300.0,
        retry: "ClientRetry | None" = None,
        rng: "random.Random | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = ClientRetry() if retry is None else retry
        self._rng = rng or random.Random()
        self._sock: "socket.socket | None" = None
        self._reader = None
        self._request_id = 0
        self._connect()  # fail fast (after retries) on a dead endpoint

    # -- connection --------------------------------------------------------------

    def _connect(self) -> None:
        """Dial the service, retrying refused connections with backoff."""
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
                self._reader = self._sock.makefile("rb")
                return
            except OSError:
                self._drop_connection()
                if attempt >= self.retry.retries:
                    raise
                time.sleep(self.retry.delay(attempt, self._rng))
                attempt += 1

    def _drop_connection(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- protocol ----------------------------------------------------------------

    def _exchange(self, doc: dict) -> dict:
        """One send/receive round trip on the current connection."""
        if self._sock is None:
            self._connect()
        assert self._sock is not None and self._reader is not None
        self._sock.sendall(
            json.dumps(doc, separators=(",", ":")).encode() + b"\n"
        )
        line = self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    def request(self, doc: dict, retryable: bool = True) -> dict:
        """Send one request document and block for its response.

        Connection failures and ``unavailable`` responses are retried
        per the client's :class:`ClientRetry` schedule when
        ``retryable`` — callers sending a ``run`` without an
        idempotency key should pass ``retryable=False`` if a double
        execution would be unacceptable (:meth:`run` always attaches a
        ``rid``, so its retries are idempotent by construction).
        """
        self._request_id += 1
        doc = {"id": self._request_id, **doc}
        attempt = 0
        while True:
            try:
                response = self._exchange(doc)
            except (ConnectionError, OSError):
                self._drop_connection()
                if not retryable or attempt >= self.retry.retries:
                    raise
                time.sleep(self.retry.delay(attempt, self._rng))
                attempt += 1
                continue
            if not response.get("ok"):
                error = response.get("error") or {}
                failure = ServiceError(
                    error.get("code", "unknown"), error.get("message", "")
                )
                if (
                    retryable
                    and failure.retryable
                    and attempt < self.retry.retries
                ):
                    time.sleep(self.retry.delay(attempt, self._rng))
                    attempt += 1
                    continue
                raise failure
            return response

    # -- operations --------------------------------------------------------------

    def run(
        self,
        experiment: str,
        seed: int = 0,
        solver: "str | None" = None,
        quick: bool = False,
        benchmarks: "Sequence[str] | None" = None,
        fault_rate: "float | None" = None,
        deadline_s: "float | None" = None,
        no_cache: bool = False,
        rid: "str | None" = None,
    ) -> dict:
        """Run an experiment; returns the full response document.

        The interesting part is ``response["result"]`` — the same
        ``{experiment, meta, payload}`` document a batch ``--json`` run
        writes.  Raises :class:`ServiceError` on rejection, deadline
        expiry, or failure.  A fresh idempotency key (``rid``) is
        attached unless the caller provides one, so retries after a
        lost connection can never execute the experiment twice.
        """
        doc: dict[str, Any] = {
            "op": "run",
            "experiment": experiment,
            "rid": rid or uuid.uuid4().hex,
        }
        if seed:
            doc["seed"] = seed
        if solver is not None:
            doc["solver"] = solver
        if quick:
            doc["quick"] = True
        if benchmarks is not None:
            doc["benchmarks"] = list(benchmarks)
        if fault_rate is not None:
            doc["fault_rate"] = fault_rate
        if deadline_s is not None:
            doc["deadline_s"] = deadline_s
        if no_cache:
            doc["no_cache"] = True
        return self.request(doc)

    def ping(self) -> bool:
        """Liveness probe; ``True`` when the service answers."""
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> dict:
        """The service's observability snapshot (see ``EngineService.stats``)."""
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> None:
        """Ask the service to drain and exit."""
        self.request({"op": "shutdown"})

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def submit_many(
    requests: "Sequence[dict]",
    host: str = "127.0.0.1",
    port: int = 7327,
    concurrency: int = 8,
    timeout_s: "float | None" = 300.0,
    retry: "ClientRetry | None" = None,
) -> "list[dict | Exception]":
    """Fan request documents out over concurrent connections.

    Each worker thread owns its own connection; results come back in
    request order, with failures (:class:`ServiceError`,
    ``ConnectionError``) delivered in-place instead of raised, so one
    rejected request does not hide the other responses.  ``run``
    documents without a ``rid`` get one attached, making the per-worker
    retries idempotent.
    """

    def _one(doc: dict) -> dict:
        if doc.get("op", "run") == "run" and "rid" not in doc:
            doc["rid"] = uuid.uuid4().hex
        with ServiceClient(host, port, timeout_s=timeout_s, retry=retry) as client:
            return client.request(doc)

    workers = max(1, min(concurrency, len(requests) or 1))
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="repro-client"
    ) as pool:
        futures = [pool.submit(_one, dict(doc)) for doc in requests]
        results: "list[dict | Exception]" = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 - delivered in-place
                results.append(exc)
    return results
