"""Fig. 16 — main-memory energy, normalised to Hard+Sys."""

from conftest import run_once

from repro.analysis.experiments import fig16
from repro.analysis.report import format_table


def test_fig16_energy(benchmark, record, perf_runner):
    data = run_once(benchmark, lambda: fig16(runner=perf_runner))
    rows = []
    for bench, per_scheme in data["per_benchmark"].items():
        ours = per_scheme["UDRVR+PR"]
        rows.append(
            [
                bench,
                ours["read"] * 1e3,
                ours["write"] * 1e3,
                ours["pump"] * 1e3,
                ours["leakage"] * 1e3,
                ours["normalised"],
                per_scheme["DRVR"]["normalised"],
            ]
        )
    record(
        "fig16",
        format_table(
            ["benchmark", "read (mJ)", "write (mJ)", "pump (mJ)",
             "leak (mJ)", "UDRVR+PR norm", "DRVR norm"],
            rows,
            title=(
                "Fig. 16: energy vs Hard+Sys (paper: UDRVR+PR -46.6% "
                f"on average; measured mean {data['udrvr_pr_mean_normalised']:.3f})"
            ),
        ),
    )
    # Direction and rough magnitude: UDRVR+PR well below Hard+Sys,
    # because the hardware stack's peripherals leak.
    assert data["udrvr_pr_mean_normalised"] < 0.75
