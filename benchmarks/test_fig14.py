"""Fig. 14 — extra writes caused by PR (and D-BL) over Flip-N-Write."""

from conftest import run_once

from repro.analysis.experiments import fig14
from repro.analysis.report import format_table


def test_fig14_extra_writes(benchmark, record):
    data = run_once(benchmark, lambda: fig14(writes=1200))
    rows = [
        [
            name,
            row["base_cells"],
            row["pr_reset_increase"],
            row["pr_set_increase"],
            row["pr_write_increase"],
            row["pr_cells"],
            row["dbl_reset_increase"],
            row["dbl_cells"],
        ]
        for name, row in data["per_benchmark"].items()
    ]
    mean = data["mean"]
    rows.append(
        [
            "mean",
            mean["base_cells"],
            mean["pr_reset_increase"],
            mean["pr_set_increase"],
            mean["pr_write_increase"],
            mean["pr_cells"],
            mean["dbl_reset_increase"],
            mean["dbl_cells"],
        ]
    )
    record(
        "fig14",
        format_table(
            ["benchmark", "base cells", "PR +RESET", "PR +SET", "PR +writes",
             "PR cells", "D-BL +RESET", "D-BL cells"],
            rows,
            title=(
                "Fig. 14: write inflation (paper means: base 10% cells; "
                "PR +54%/+48%/+50.7%, 14.3% cells; D-BL +235% RESETs, 20%)"
            ),
        ),
    )
    assert 0.35 < mean["pr_write_increase"] < 0.7
    assert mean["dbl_reset_increase"] > mean["pr_reset_increase"]
    assert 0.06 < mean["base_cells"] < 0.15
