"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures — these sweep the knobs the paper fixed, to show the
defaults sit at (or near) the optimum of each trade-off.
"""

import numpy as np
from conftest import run_once

from repro.analysis.report import format_series, format_table
from repro.config import default_config
from repro.techniques import SchemeLatencyModel, Scheme
from repro.techniques.base import RowSectionRegulator
from repro.techniques.drvr import drvr_levels
from repro.techniques.partition_reset import PartitionResetPartitioner
from repro.xpoint.vmap import get_ir_model


def test_ablation_drvr_section_count(benchmark, record):
    """More Vrst levels flatten the BL but cost pump complexity."""
    config = default_config()
    model = get_ir_model(config)

    def sweep():
        outcome = {}
        for sections in (2, 4, 8, 16):
            levels = drvr_levels(config, sections=sections)
            profile = model.v_eff_map(
                RowSectionRegulator(levels).matrix(model)
            )[:, 0]
            rows = config.array.size // sections
            intra = max(
                float(np.ptp(profile[s * rows : (s + 1) * rows]))
                for s in range(sections)
            )
            outcome[sections] = intra
        return outcome

    data = run_once(benchmark, sweep)
    record(
        "ablation_drvr_sections",
        format_series(
            "DRVR intra-section Veff spread vs section count "
            "(paper uses 8 -> <0.1 V)",
            sorted(data.items()),
            unit="V",
        ),
    )
    assert data[8] < 0.1
    assert data[2] > data[8] > data[16]


def test_ablation_pr_group_size(benchmark, record):
    """PR's 2-bit groups hit the N=4 partition sweet spot."""
    config = default_config()

    def sweep():
        outcome = {}
        for group_size in (1, 2, 4):
            scheme = Scheme(
                name=f"PR-g{group_size}",
                partitioner=PartitionResetPartitioner(group_size=group_size),
                reset_before_set=True,
            )
            latency_model = SchemeLatencyModel(config, scheme)
            outcome[group_size] = (
                latency_model.worst_case_write_latency() * 1e9
            )
        return outcome

    data = run_once(benchmark, sweep)
    record(
        "ablation_pr_group_size",
        format_series(
            "worst-case write latency vs PR group size "
            "(2 -> ~4 concurrent RESETs, the Fig. 11a optimum)",
            sorted(data.items()),
            unit="ns",
        ),
    )
    # 1-bit groups force 8 concurrent RESETs (over-coalescing), 4-bit
    # groups under-partition; the paper's 2-bit choice wins.
    assert data[2] <= data[1]
    assert data[2] <= data[4]


def test_ablation_pr_trigger_window(benchmark, record):
    """The 'last 5 bits' trigger balances speed against extra writes."""
    config = default_config()

    def sweep():
        outcome = {}
        for trigger in (1, 3, 5, 7):
            scheme = Scheme(
                name=f"PR-t{trigger}",
                partitioner=PartitionResetPartitioner(trigger_start=trigger),
                reset_before_set=True,
            )
            latency_model = SchemeLatencyModel(config, scheme)
            worst = latency_model.worst_case_write_latency() * 1e9
            # Extra writes on a representative far-bit pattern.
            resets = np.zeros(8, dtype=bool)
            resets[6] = True
            plan = scheme.partitioner.plan(resets, ~resets & False)
            outcome[trigger] = (worst, plan.extra_resets)
        return outcome

    data = run_once(benchmark, sweep)
    record(
        "ablation_pr_trigger",
        format_table(
            ["trigger start", "worst write (ns)", "extra RESETs (bit-6 write)"],
            [[k, v[0], v[1]] for k, v in sorted(data.items())],
            title="PR trigger-window ablation (paper uses bit 3)",
        ),
    )
    assert data[3][0] <= data[7][0]


def test_ablation_reduced_vs_exact_solver(benchmark, record):
    """Accuracy/runtime of the reduced model vs the exact 2-D solve."""
    import time

    from repro.circuit.crosspoint import FullArrayModel
    from repro.circuit.line_model import ReducedArrayModel

    config = default_config(size=32)

    def compare():
        full = FullArrayModel(config)
        reduced = ReducedArrayModel(config)
        t0 = time.perf_counter()
        exact = full.solve_reset(31, (31,)).v_eff[(31, 31)]
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = reduced.solve_reset(31, (31,)).v_eff[(31, 31)]
        t_reduced = time.perf_counter() - t0
        return exact, fast, t_full, t_reduced

    exact, fast, t_full, t_reduced = run_once(benchmark, compare)
    record(
        "ablation_solvers",
        format_table(
            ["solver", "worst Veff (V)", "runtime (ms)"],
            [["exact 2-D", exact, t_full * 1e3],
             ["reduced", fast, t_reduced * 1e3]],
            title="Reduced vs exact solver (32x32 array)",
        ),
    )
    assert abs(exact - fast) < 0.03
    assert t_reduced < t_full
