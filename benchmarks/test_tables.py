"""Tables I, III and IV — parameter and workload fidelity."""

from conftest import run_once

from repro.analysis.experiments import table_benchmarks, table_parameters
from repro.analysis.report import format_table


def test_table_i_and_iii_parameters(benchmark, record):
    params = run_once(benchmark, table_parameters)
    cell, array, pump = params["cell"], params["array"], params["pump"]
    memory, cpu = params["memory"], params["cpu"]
    rows = [
        ["Ion (uA)", cell.i_on * 1e6, 90],
        ["Kr", array.selector.kr, 1000],
        ["MAT size", array.size, 512],
        ["bits per MAT", array.data_width, 8],
        ["Rwire (ohm)", array.r_wire, 11.5],
        ["Vrst / Vset (V)", cell.v_reset, 3],
        ["Vread (V)", cell.v_read, 1.8],
        ["capacity (GB)", memory.capacity_bytes / 2**30, 64],
        ["ranks/channel", memory.ranks_per_channel, 2],
        ["chips/rank", memory.chips_per_rank, 8],
        ["pump RESET budget (mA)", pump.i_reset_budget * 1e3, 23],
        ["pump charge (ns)", pump.t_charge * 1e9, 28],
        ["cores", cpu.cores, 8],
        ["core clock (GHz)", cpu.freq_ghz, 3.2],
    ]
    record(
        "table_i_iii",
        format_table(
            ["parameter", "model", "paper"],
            rows,
            title="Tables I & III: model parameters",
        ),
    )
    for _, model_value, paper_value in rows:
        assert abs(model_value - paper_value) / paper_value < 1e-6


def test_table_iv_benchmarks(benchmark, record):
    data = run_once(benchmark, lambda: table_benchmarks(samples=6000))
    rows = [
        [name, row["target_rpki"], row["measured_rpki"],
         row["target_wpki"], row["measured_wpki"]]
        for name, row in data["rows"].items()
    ]
    record(
        "table_iv",
        format_table(
            ["benchmark", "RPKI (paper)", "RPKI (measured)",
             "WPKI (paper)", "WPKI (measured)"],
            rows,
            title="Table IV: generated workload rates vs targets",
        ),
    )
    for name, row in data["rows"].items():
        if name.startswith("mix"):
            continue
        assert abs(row["measured_rpki"] - row["target_rpki"]) < 0.3 * max(
            1.0, row["target_rpki"]
        ), name
