"""Fig. 15 — overall performance of every scheme vs ora-64x64.

The headline experiment: on average UDRVR+PR should beat Hard+Sys
(paper: +11.7%) and approach ora-64x64 (paper: ~90%).
"""

from conftest import run_once

from repro.analysis.experiments import fig15
from repro.analysis.report import format_table

NAMES = (
    "Base",
    "Hard",
    "Hard+Sys",
    "DRVR",
    "UDRVR+PR",
    "ora-256x256",
    "ora-128x128",
)


def test_fig15_overall_performance(benchmark, record, perf_runner):
    data = run_once(benchmark, lambda: fig15(runner=perf_runner))
    rows = [
        [bench] + [table[name] for name in NAMES]
        for bench, table in data["per_benchmark"].items()
    ]
    rows.append(["geomean"] + [data["geomean"][name] for name in NAMES])
    record(
        "fig15",
        format_table(
            ["benchmark", *NAMES],
            rows,
            title=(
                "Fig. 15: performance vs ora-64x64 (paper: UDRVR+PR "
                "+11.7% over Hard+Sys, ~90% of ora-64x64; measured "
                f"improvement {data['udrvr_pr_over_hard_sys']:.3f}x)"
            ),
        ),
    )
    means = data["geomean"]
    # Who wins: UDRVR+PR over Hard+Sys over DRVR over Base.
    assert data["udrvr_pr_over_hard_sys"] > 1.0
    assert means["UDRVR+PR"] > means["DRVR"] > means["Base"]
    assert means["UDRVR+PR"] > 0.85  # close to the oracle
