"""Fig. 20 — UDRVR+PR improvement across selector ON/OFF ratios."""

from conftest import SWEEP_SETTINGS, run_once

from repro.analysis.experiments import fig20
from repro.analysis.report import format_table


def test_fig20_selector_sweep(benchmark, record):
    data = run_once(benchmark, lambda: fig20(settings=SWEEP_SETTINGS))
    improvement = data["improvement"]
    rows = [
        [label, improvement[label]["vs_hard_sys"], improvement[label]["vs_base"]]
        for label in ("Kr=500", "Kr=1000", "Kr=2000")
    ]
    record(
        "fig20",
        format_table(
            ["selector", "UDRVR+PR / Hard+Sys", "UDRVR+PR / Base"],
            rows,
            title=(
                "Fig. 20: improvement by selector ON/OFF ratio "
                "(paper vs Hard+Sys: +18.9% / +11.7% / +5.8%)"
            ),
        ),
    )
    # Leakier selectors -> more sneak -> bigger gains over the baseline.
    assert (
        improvement["Kr=500"]["vs_base"] > improvement["Kr=2000"]["vs_base"]
    )
