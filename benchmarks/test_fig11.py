"""Fig. 11b/c/d — DRVR + PR maps at the partition optimum."""

from conftest import run_once

from repro.analysis.experiments import fig04, fig11
from repro.analysis.report import format_table


def test_fig11_drvr_pr_maps(benchmark, record):
    data = run_once(benchmark, fig11)
    base = fig04()
    rows = [
        ["baseline", base["v_eff"].minimum,
         base["latency"].maximum * 1e9, base["endurance"].minimum],
        [f"DRVR+PR (n={data['n_bits']})", data["v_eff"].minimum,
         data["latency"].maximum * 1e9, data["endurance"].minimum],
    ]
    record(
        "fig11",
        format_table(
            ["config", "min Veff (V)", "max latency (ns)", "min endurance"],
            rows,
            title=(
                "Fig. 11: DRVR+PR boosts the far side of the array "
                "(paper: right-most BL down to 71 ns; worst endurance kept)"
            ),
        ),
    )
    assert data["latency"].maximum < 0.2 * base["latency"].maximum
    assert data["endurance"].minimum > 0.5 * base["endurance"].minimum
