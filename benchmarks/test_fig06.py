"""Fig. 6 — over-RESET under static 3.7 V, and the DRVR maps."""

from conftest import run_once

from repro.analysis.experiments import fig06
from repro.analysis.report import format_table


def test_fig06_drvr_maps(benchmark, record):
    data = run_once(benchmark, fig06)
    rows = []
    for label, payload in (("static 3.7V", data["naive"]), ("DRVR", data["drvr"])):
        rows.append(
            [
                label,
                payload["v_eff"].minimum,
                payload["v_eff"].maximum,
                payload["latency"].maximum * 1e9,
                payload["endurance"].minimum,
            ]
        )
    record(
        "fig06",
        format_table(
            ["scheme", "min Veff", "max Veff", "max latency (ns)",
             "min endurance"],
            rows,
            title=(
                "Fig. 6: naive over-drive vs DRVR "
                "(paper: 1.5K-5K writes at 3.7 V; DRVR keeps 5e6)"
            ),
        ),
    )
    assert 1e3 < data["naive"]["endurance"].minimum < 1e4
    assert data["drvr"]["endurance"].minimum > 4e6
