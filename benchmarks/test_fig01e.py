"""Fig. 1e — wire resistance per junction vs technology node."""

from conftest import run_once

from repro.analysis.experiments import fig01e
from repro.analysis.report import format_series


def test_fig01e_wire_resistance(benchmark, record):
    data = run_once(benchmark, fig01e)
    record(
        "fig01e",
        format_series(
            "Fig. 1e: wire resistance per junction (paper: 11.5 ohm at 20 nm)",
            [(f"{node:g} nm", r) for node, r in data["series"]],
            unit="ohm",
        ),
    )
    table = dict(data["series"])
    assert table[20.0] == 11.5
    assert table[10.0] > table[20.0] > table[32.0]
