"""Micro-benchmarks of the circuit substrate (real timing, many rounds).

Unlike the figure benches these measure steady-state throughput of the
hot kernels: the reduced ladder solve, the analytic WL model, full-map
generation, and the write-path plan/latency lookups.
"""

import numpy as np

from repro.config import default_config
from repro.circuit.line_model import ReducedArrayModel
from repro.mem.line_codec import LineWriteModel
from repro.techniques import make_udrvr_pr
from repro.workloads.datapatterns import PatternParams, WritePatternGenerator
from repro.xpoint.vmap import get_ir_model


def test_bench_reduced_solve_512(benchmark):
    model = ReducedArrayModel(default_config())
    benchmark(lambda: model.solve_reset(511, (511,)))


def test_bench_reduced_solve_multibit(benchmark):
    model = ReducedArrayModel(default_config())
    cols = tuple(range(63, 512, 64))
    benchmark(lambda: model.solve_reset(511, cols))


def test_bench_wl_drop_vectorised(benchmark):
    model = get_ir_model(default_config())
    wl = model.wl_model
    cols = np.arange(512)
    benchmark(lambda: wl.drop(cols, n_bits=4))


def test_bench_v_eff_map(benchmark):
    model = get_ir_model(default_config())
    model.v_eff_map()  # warm the profile cache: measure map assembly
    benchmark(model.v_eff_map)


def test_bench_line_write_plan(benchmark):
    config = default_config()
    writer = LineWriteModel(config, make_udrvr_pr(config))
    generator = WritePatternGenerator(PatternParams(), seed=0)
    masks = [generator.masks() for _ in range(64)]
    counter = iter(range(10**9))

    def one_write():
        resets, sets = masks[next(counter) % 64]
        return writer.write(resets, sets, row=100)

    benchmark(one_write)


def test_bench_pattern_generation(benchmark):
    generator = WritePatternGenerator(PatternParams(), seed=1)
    benchmark(generator.masks)
