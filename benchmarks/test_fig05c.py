"""Fig. 5c — performance of prior designs, normalised to ora-64x64."""

from conftest import run_once

from repro.analysis.experiments import fig05c
from repro.analysis.report import format_table


def test_fig05c_prior_designs(benchmark, record, perf_runner):
    data = run_once(
        benchmark, lambda: fig05c(settings=perf_runner.settings)
    )
    names = ("Base", "Hard", "Hard+Sys", "ora-256x256", "ora-128x128")
    rows = [
        [bench] + [table[name] for name in names]
        for bench, table in data["per_benchmark"].items()
    ]
    rows.append(["geomean"] + [data["geomean"][name] for name in names])
    record(
        "fig05c",
        format_table(
            ["benchmark", *names],
            rows,
            title=(
                "Fig. 5c: prior designs vs ora-64x64 "
                "(paper: Hard+Sys ~7.3% below ora-128x128)"
            ),
        ),
    )
    means = data["geomean"]
    # Ordering: the prior stacks far outperform Base and stay below the
    # ora-128x128 oracle (paper: Hard+Sys ~7.3% below it).  Known
    # deviation (EXPERIMENTS.md): our SCH/RBDL maintenance-write model
    # puts Hard+Sys slightly *below* Hard, where the paper has it above.
    assert means["Base"] < means["Hard+Sys"] < 1.02
    assert means["Base"] < means["Hard"] < 1.02
    assert abs(means["Hard+Sys"] - means["Hard"]) < 0.15
    assert means["Hard+Sys"] <= means["ora-128x128"] * 1.02
