"""Fig. 5b — main-memory lifetime under worst-case non-stop writes."""

from conftest import run_once

from repro.analysis.experiments import fig05b
from repro.analysis.report import format_table

PAPER_YEARS = {
    "Base": "65 y",
    "Hard+Sys": "days",
    "Static-3.7V": "< 1 d",
    "DRVR": "6.75 y",
    "DRVR+PR": "1 y",
    "UDRVR+PR": "10.7 y",
}


def test_fig05b_lifetimes(benchmark, record):
    data = run_once(benchmark, fig05b)
    rows = [
        [
            r.scheme,
            r.min_endurance,
            r.write_cycle_s * 1e9,
            r.cell_write_fraction,
            r.wear_leveled,
            r.years,
            PAPER_YEARS.get(r.scheme, "-"),
        ]
        for r in data["reports"]
    ]
    record(
        "fig05b",
        format_table(
            ["scheme", "min endurance", "cycle (ns)", "cells/write",
             "wear-leveled", "measured (years)", "paper"],
            rows,
            title="Fig. 5b: lifetime under non-stop writes",
        ),
    )
    reports = {r.scheme: r for r in data["reports"]}
    assert reports["UDRVR+PR"].years > 10
    assert reports["Static-3.7V"].days < 3
