"""Fig. 17 — UDRVR-3.94 (voltage-only) vs UDRVR+PR."""

from conftest import run_once

from repro.analysis.experiments import fig17
from repro.analysis.report import format_table


def test_fig17_high_voltage_udrvr(benchmark, record, perf_runner):
    data = run_once(benchmark, lambda: fig17(runner=perf_runner))
    rows = [
        [bench, table["UDRVR-3.94"], table["UDRVR+PR"]]
        for bench, table in data["per_benchmark"].items()
    ]
    record(
        "fig17",
        format_table(
            ["benchmark", "UDRVR-3.94", "UDRVR+PR"],
            rows,
            title=(
                "Fig. 17: vs Hard+Sys (paper: UDRVR+PR beats UDRVR-3.94 "
                f"by 7.2%; measured perf {data['udrvr_pr_over_394']:.3f}x, "
                f"energy {data['udrvr_pr_energy_vs_394']:.3f}x)"
            ),
        ),
    )
    # Known deviation (EXPERIMENTS.md): our saturated-leakage selector
    # removes the over-voltage sneak penalty, so UDRVR-3.94 performs
    # near parity instead of 7.2% behind.  The *energy* direction is
    # unambiguous: the 3.94 V pump costs more per write and leaks more.
    assert data["udrvr_pr_over_394"] >= 0.96
    assert data["udrvr_pr_energy_vs_394"] < 1.0
