"""Fig. 4 — baseline effective Vrst / RESET latency / endurance maps."""

from conftest import run_once

from repro.analysis.experiments import fig04
from repro.analysis.report import format_table


def test_fig04_baseline_maps(benchmark, record):
    data = run_once(benchmark, fig04)
    rows = []
    for key, paper in (
        ("v_eff", "3.0 V best / 1.7 V worst"),
        ("latency", "15 ns best / 2.3 us worst"),
        ("endurance", "5e6 worst / >1e12 best"),
    ):
        summary = data[key]
        rows.append(
            [key, summary.bottom_left, summary.top_right, summary.minimum,
             summary.maximum, paper]
        )
    record(
        "fig04",
        format_table(
            ["map", "bottom-left", "top-right", "min", "max", "paper"],
            rows,
            title="Fig. 4: baseline 512x512 array maps",
        ),
    )
    assert data["v_eff"].minimum > 1.65
    assert 2.0e-6 < data["latency"].maximum < 2.6e-6
