"""Fig. 7b — effective Vrst along the left-most bit-line, +/- DRVR."""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import fig07b
from repro.analysis.report import format_series


def test_fig07b_leftmost_bitline(benchmark, record):
    data = run_once(benchmark, fig07b)
    static = data["static_profile"]
    drvr = data["drvr_profile"]
    samples = np.linspace(0, static.size - 1, 9).astype(int)
    text = "\n".join(
        [
            format_series(
                "Fig. 7b static 3V (paper: ~0.66 V near/far delta)",
                [(int(r), float(static[r])) for r in samples],
                unit="V",
            ),
            format_series(
                "Fig. 7b DRVR (paper: <0.1 V within a section)",
                [(int(r), float(drvr[r])) for r in samples],
                unit="V",
            ),
            f"static near/far delta: {data['static_delta']:.3f} V (paper ~0.66)",
            f"DRVR intra-section delta: {data['drvr_intra_section_delta']:.3f} V"
            " (paper <0.1)",
        ]
    )
    record("fig07b", text)
    assert data["static_delta"] > 0.5
    assert data["drvr_intra_section_delta"] < 0.1
