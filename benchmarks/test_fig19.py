"""Fig. 19 — UDRVR+PR improvement across wire-resistance nodes."""

from conftest import SWEEP_SETTINGS, run_once

from repro.analysis.experiments import fig19
from repro.analysis.report import format_table


def test_fig19_wire_resistance_sweep(benchmark, record):
    data = run_once(benchmark, lambda: fig19(settings=SWEEP_SETTINGS))
    improvement = data["improvement"]
    rows = [
        [label, improvement[label]["vs_hard_sys"], improvement[label]["vs_base"]]
        for label in ("32nm", "20nm", "10nm")
    ]
    record(
        "fig19",
        format_table(
            ["node", "UDRVR+PR / Hard+Sys", "UDRVR+PR / Base"],
            rows,
            title=(
                "Fig. 19: improvement by technology node "
                "(paper vs Hard+Sys: +1.4% / +11.7% / +18.3%)"
            ),
        ),
    )
    # Thinner wires -> more drop -> bigger gains over the baseline.
    assert (
        improvement["10nm"]["vs_base"]
        > improvement["20nm"]["vs_base"]
        > improvement["32nm"]["vs_base"]
    )
    assert improvement["10nm"]["vs_hard_sys"] >= improvement["32nm"][
        "vs_hard_sys"
    ]
