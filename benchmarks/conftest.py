"""Shared state for the figure-regeneration benchmark harness.

Every ``benchmarks/test_figXX.py`` regenerates one paper figure/table:
it runs the corresponding :mod:`repro.analysis.experiments` driver once
under ``pytest-benchmark`` timing, prints the same rows/series the paper
reports, and appends them to ``benchmarks/results/`` so the output
survives pytest's capture.

Simulation-backed figures share one session-scoped
:class:`~repro.analysis.experiments.PerformanceRunner`, so Figs. 5c, 15,
16 and 17 reuse each other's runs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.experiments import PerfSettings, PerformanceRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Sizing for the simulation-backed figures: large enough for stable
#: per-benchmark ratios, small enough for a laptop-scale harness run.
BENCH_SETTINGS = PerfSettings(scale=256, accesses_per_core=6000, seed=3)

#: Sweep figures (18-20) rebuild schemes per config variant, so they use
#: the representative heavy/medium/light subset the ratios are stable on.
SWEEP_SETTINGS = PerfSettings(
    scale=256,
    accesses_per_core=6000,
    seed=3,
    benchmarks=("mcf_m", "lbm_m", "mum_m"),
)


@pytest.fixture(scope="session")
def perf_runner() -> PerformanceRunner:
    """One memoised runner for all simulation-backed figures."""
    return PerformanceRunner(settings=BENCH_SETTINGS)


@pytest.fixture(scope="session")
def record():
    """Print a figure's rows and persist them under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def run_once(benchmark, fn):
    """Execute an experiment exactly once under benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
