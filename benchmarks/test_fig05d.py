"""Fig. 5d — hardware overhead, normalised to the baseline chip."""

from conftest import run_once

from repro.analysis.experiments import fig05d
from repro.analysis.report import format_table

PAPER = {
    "Base": "1.00 / 1.00",
    "Hard": "~1.6 / ~1.8",
    "Hard+Sys": "1.53 / 1.75",
    "DRVR": "~1.04 / ~1.05",
    "UDRVR+PR": "~1.04 / ~1.05",
}


def test_fig05d_overheads(benchmark, record):
    data = run_once(benchmark, fig05d)
    rows = [
        [r.scheme, r.area_factor, r.leakage_factor, r.power_factor,
         PAPER.get(r.scheme, "-")]
        for r in data["reports"]
    ]
    record(
        "fig05d",
        format_table(
            ["scheme", "area x", "leakage x", "power x", "paper (area/power)"],
            rows,
            title="Fig. 5d: chip overheads vs baseline",
        ),
    )
    reports = {r.scheme: r for r in data["reports"]}
    assert reports["Hard+Sys"].area_factor > 1.5
    assert reports["UDRVR+PR"].area_factor < 1.1
