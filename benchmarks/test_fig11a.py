"""Fig. 11a — worst-cell effective Vrst under multi-bit RESETs."""

from conftest import run_once

from repro.analysis.experiments import fig11a
from repro.analysis.report import format_series


def test_fig11a_multibit_sweet_spot(benchmark, record):
    data = run_once(benchmark, fig11a)
    record(
        "fig11a",
        format_series(
            "Fig. 11a: worst-cell effective Vrst vs concurrent RESETs "
            "(paper: improves to ~4 bits, then worsens)",
            [(f"{n}-bit", v) for n, v in data["series"]],
            unit="V",
        )
        + f"\noptimal concurrency: {data['optimal_bits']} (paper: 4)",
    )
    assert data["optimal_bits"] == 4
