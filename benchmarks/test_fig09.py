"""Fig. 9 — RESET-bit count distribution of 64B writes per 8-bit MAT."""

from conftest import run_once

from repro.analysis.experiments import fig09
from repro.analysis.report import format_table


def test_fig09_reset_bit_distribution(benchmark, record):
    data = run_once(benchmark, lambda: fig09(writes=1500))
    rows = [
        [name] + [float(h) for h in hist]
        for name, hist in data["histograms"].items()
    ]
    record(
        "fig09",
        format_table(
            ["benchmark"] + [f"{n}-bit" for n in range(9)],
            rows,
            title=(
                "Fig. 9: fraction of MATs resetting N bits per write "
                "(paper: most MATs 0; 7/8-bit rare except xalancbmk)"
            ),
        ),
    )
    for name, hist in data["histograms"].items():
        assert hist[0] > 0.4, name
        if name not in ("xal_m", "zeu_m", "mix_1", "mix_2"):
            assert hist[7:].sum() < 0.02, name
