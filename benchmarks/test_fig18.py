"""Fig. 18 — UDRVR+PR improvement across array sizes."""

from conftest import SWEEP_SETTINGS, run_once

from repro.analysis.experiments import fig18
from repro.analysis.report import format_table


def test_fig18_array_size_sweep(benchmark, record):
    data = run_once(benchmark, lambda: fig18(settings=SWEEP_SETTINGS))
    improvement = data["improvement"]
    rows = [
        [label, v["vs_hard_sys"], v["vs_base"]]
        for label, v in sorted(improvement.items())
    ]
    record(
        "fig18",
        format_table(
            ["array", "UDRVR+PR / Hard+Sys", "UDRVR+PR / Base"],
            rows,
            title=(
                "Fig. 18: improvement by array size "
                "(paper vs Hard+Sys: +6.7% / +11.7% / +18.2%)"
            ),
        ),
    )
    # Larger arrays suffer more drop -> bigger gains over the baseline.
    assert (
        improvement["1Kx1K"]["vs_base"]
        > improvement["512x512"]["vs_base"]
        > improvement["256x256"]["vs_base"]
    )
    assert improvement["1Kx1K"]["vs_hard_sys"] >= improvement["256x256"][
        "vs_hard_sys"
    ]
