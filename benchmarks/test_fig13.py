"""Fig. 13 — UDRVR+PR RESET latency and endurance maps."""

from conftest import run_once

from repro.analysis.experiments import fig13
from repro.analysis.report import format_table


def test_fig13_udrvr_pr_maps(benchmark, record):
    data = run_once(benchmark, fig13)
    rows = [
        ["max RESET latency (ns)", data["latency"].maximum * 1e9, "71"],
        ["min endurance (writes)", data["endurance"].minimum, "6.7e7"],
        ["worst-case write latency (ns)",
         data["worst_case_write_latency"] * 1e9,
         "71 (RESET phase) + SET phase"],
    ]
    record(
        "fig13",
        format_table(
            ["quantity", "measured", "paper"],
            rows,
            title="Fig. 13: UDRVR+PR equalised latency / endurance",
        ),
    )
    assert data["latency"].maximum < 200e-9
    assert data["endurance"].minimum > 5e7
