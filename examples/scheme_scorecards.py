#!/usr/bin/env python3
"""Scheme scorecards: the whole trade-off space on one screen.

Evaluates every scheme of the paper's comparison on all static axes
(speed, pump voltage, lifetime, area, power, wear-leveling
compatibility) and ranks them — the quickest way to see *why* UDRVR+PR
is the paper's answer: the only fast scheme that keeps the 10-year
guarantee without the hardware stack's overheads.

Run:  python examples/scheme_scorecards.py
"""

from repro import default_config
from repro.analysis.report import format_table
from repro.analysis.scorecard import scorecard_table
from repro.techniques import standard_schemes


def main() -> None:
    config = default_config()
    schemes = standard_schemes(config)
    wanted = (
        "Base",
        "Static-3.7V",
        "Hard",
        "Hard+Sys",
        "DRVR",
        "DRVR+PR",
        "UDRVR+PR",
        "UDRVR-3.94",
    )
    cards = scorecard_table({name: schemes[name] for name in wanted}, config)
    rows = [
        [
            card.scheme,
            card.worst_write_latency_s * 1e9,
            card.pump_voltage,
            f"{card.lifetime_years:.2f}",
            card.area_factor,
            card.power_factor,
            card.wear_leveling_compatible,
            card.meets_ten_year_guarantee,
        ]
        for card in cards
    ]
    print(
        format_table(
            ["scheme", "worst write (ns)", "pump (V)", "lifetime (y)",
             "area x", "power x", "wear-leveled", ">10 y"],
            rows,
            title="Scheme scorecards, fastest first (512x512 baseline array)",
        )
    )
    print(
        "\nThe paper's argument in one line: only UDRVR+PR combines a "
        "fast write path,\nthe 10-year guarantee, wear-leveling "
        "compatibility and near-baseline cost."
    )


if __name__ == "__main__":
    main()
