#!/usr/bin/env python3
"""Circuit explorer: poke the IR-drop solvers directly.

Shows the library's lowest layer: builds a small cross-point array,
solves one RESET exactly (every junction of the 2-D network) and with
the fast reduced model, prints the voltage profiles along the selected
lines, and demonstrates a multi-bit RESET partitioning the word-line.

Run:  python examples/circuit_explorer.py
"""

import numpy as np

from repro import default_config
from repro.analysis.report import format_series
from repro.circuit.crosspoint import FullArrayModel
from repro.circuit.line_model import ReducedArrayModel


def main() -> None:
    config = default_config(size=32)  # small enough for the exact solver
    a = config.array.size

    print(f"=== Exact vs reduced solve ({a}x{a} array, worst corner) ===")
    exact = FullArrayModel(config).solve_reset(a - 1, (a - 1,))
    reduced_model = ReducedArrayModel(config)
    fast = reduced_model.solve_reset(a - 1, (a - 1,))
    print(f"  exact 2-D network ({2 * a * a} nodes): "
          f"{exact.v_eff[(a - 1, a - 1)]:.4f} V effective")
    print(f"  reduced two-line model ({2 * a} nodes): "
          f"{fast.v_eff[(a - 1, a - 1)]:.4f} V effective")
    print(f"  cell current: {fast.cell_currents[(a - 1, a - 1)] * 1e6:.1f} uA, "
          f"WL return current: {fast.total_wl_current * 1e6:.1f} uA "
          f"(the difference is sneak)\n")

    print("=== Voltage profiles along the selected lines ===")
    samples = np.linspace(0, a - 1, 9).astype(int)
    print(format_series(
        "selected BL (driven 3 V at row 0)",
        [(int(r), float(fast.bl_profiles[a - 1][r])) for r in samples],
        unit="V",
    ))
    print(format_series(
        "selected WL (grounded at column 0)",
        [(int(c), float(fast.wl_profile[c])) for c in samples],
        unit="V",
    ))

    print("\n=== Partitioning: concurrent RESETs on one word-line ===")
    for n in (1, 2, 4, 8):
        cols = tuple(int(c) for c in np.linspace(a // n - 1, a - 1, n))
        solution = reduced_model.solve_reset(a - 1, cols)
        worst = solution.worst_v_eff()
        print(f"  {n}-bit RESET at columns {cols}: "
              f"worst cell {worst:.3f} V, "
              f"WL current {solution.total_wl_current * 1e6:.0f} uA")


if __name__ == "__main__":
    main()
