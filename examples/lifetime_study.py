#!/usr/bin/env python3
"""Lifetime study: why fast RESETs are dangerous (Fig. 5b).

Walks the paper's lifetime argument end to end: the baseline's slow
RESETs accidentally protect it; naive over-drive kills the array in a
day; DRVR+PR's speed costs lifetime; UDRVR buys it back.  Also shows
the wear-leveling dependency — the system schemes (SCH/RBDL) that break
wear leveling collapse to days.

Run:  python examples/lifetime_study.py
"""

from dataclasses import replace

from repro import default_config
from repro.analysis.report import format_table
from repro.mem.ecp import EcpLine
from repro.mem.lifetime import LifetimeEstimator
from repro.mem.wear_leveling import InterLineWearLeveling
from repro.techniques import standard_schemes
from repro.techniques.partition_reset import PartitionResetPartitioner


def lifetime_table(config) -> str:
    estimator = LifetimeEstimator(config)
    schemes = standard_schemes(config)
    drvr_pr = replace(
        schemes["DRVR"],
        name="DRVR+PR",
        partitioner=PartitionResetPartitioner(),
        reset_before_set=True,
    )
    rows = []
    for scheme in (
        schemes["Base"],
        schemes["Static-3.7V"],
        schemes["Hard+Sys"],
        schemes["DRVR"],
        drvr_pr,
        schemes["UDRVR+PR"],
    ):
        report = estimator.estimate(scheme)
        span = (
            f"{report.years:8.2f} years"
            if report.years >= 1
            else f"{report.days:8.2f} days "
        )
        rows.append(
            [
                report.scheme,
                f"{report.min_endurance:.2e}",
                f"{report.write_cycle_s * 1e9:.0f}",
                f"{report.cell_write_fraction:.2f}",
                report.wear_leveled,
                span,
            ]
        )
    return format_table(
        ["scheme", "weakest cell", "write cycle (ns)", "cells/write",
         "wear-leveled", "lifetime"],
        rows,
        title="Lifetime under worst-case non-stop writes (Fig. 5b)",
    )


def wear_leveling_demo() -> None:
    print("\n=== Why wear leveling matters ===")
    wl = InterLineWearLeveling(lines=1 << 10, epoch_writes=64, seed=1)
    victims = set()
    for _ in range(20_000):
        victims.add(wl.record_write(0))  # one pathological hot line
    print(
        f"20,000 writes to ONE logical line landed on {len(victims)} "
        f"distinct physical lines ({len(victims) / 1024:.0%} of the bank)."
    )

    line = EcpLine(line_bits=512, pointers=6)
    for bit in range(6):
        line.record_cell_failure(bit)
    print(
        f"ECP-6 keeps a line alive through {line.failed_cells} cell "
        f"failures ({line.remaining_pointers} pointers left); the 7th kills it."
    )


def main() -> None:
    config = default_config()
    print(lifetime_table(config))
    wear_leveling_demo()


if __name__ == "__main__":
    main()
