#!/usr/bin/env python3
"""Quickstart: IR drop in a ReRAM cross-point array, and what DRVR/PR do.

Builds the paper's 512x512 baseline array, shows the voltage-drop
problem (Fig. 4), then applies the paper's techniques step by step and
prints what each one buys.

Run:  python examples/quickstart.py
"""

from repro import default_config, get_ir_model
from repro.analysis.report import format_table
from repro.techniques import (
    SchemeLatencyModel,
    make_baseline,
    make_drvr,
    make_udrvr_pr,
)


def main() -> None:
    config = default_config()
    model = get_ir_model(config)

    print("=== The problem (Fig. 4) ===")
    v_eff = model.v_eff_map()
    latency = model.latency_map()
    print(
        f"Applying {config.cell.v_reset:.1f} V to a "
        f"{config.array.size}x{config.array.size} cross-point array:"
    )
    print(f"  best cell  (near drivers): {v_eff[0, 0]:.2f} V effective "
          f"-> {latency[0, 0] * 1e9:.0f} ns RESET")
    print(f"  worst cell (far corner)  : {v_eff[-1, -1]:.2f} V effective "
          f"-> {latency[-1, -1] * 1e6:.2f} us RESET")
    print(f"  the array must budget for the slowest cell: "
          f"{latency.max() * 1e6:.2f} us per RESET phase\n")

    print("=== Multi-bit RESETs partition the array (Fig. 11a) ===")
    a = config.array.size
    for n in (1, 2, 4, 8):
        v = model.v_eff(a - 1, a - 1, n_bits=n)
        t = model.reset_latency(a - 1, a - 1, n_bits=n)
        print(f"  {n}-bit RESET: worst cell {v:.2f} V -> {t * 1e9:6.0f} ns")
    print(f"  sweet spot: {model.wl_model.optimal_bits()} concurrent RESETs "
          "(too many coalesce on the word-line)\n")

    print("=== The techniques ===")
    rows = []
    for scheme in (
        make_baseline(config),
        make_drvr(config),
        make_udrvr_pr(config),
    ):
        lm = SchemeLatencyModel(config, scheme)
        rows.append(
            [
                scheme.name,
                scheme.regulator.max_voltage(model),
                lm.worst_case_write_latency() * 1e9,
                scheme.description or "-",
            ]
        )
    print(
        format_table(
            ["scheme", "pump output (V)", "worst write (ns)", "what it does"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
