#!/usr/bin/env python3
"""Memory-system performance: run the trace-driven simulator directly.

Simulates a write-heavy (mcf-like) and a write-light (zeusmp-like)
multi-programmed workload through the full stack — synthetic streams,
per-core DRAM-L3 slices, the read-priority controller with write
bursts, and the ReRAM write path of each scheme — and reports IPC,
read-latency and energy, the quantities behind Figs. 15 and 16.

Run:  python examples/memsys_performance.py
"""

from repro import default_config
from repro.analysis.report import format_table
from repro.cpu.system import SystemSimulator
from repro.mem.energy import EnergyModel
from repro.techniques import standard_schemes
from repro.workloads import get_benchmark
from repro.workloads.benchmarks import scale_benchmark

SCALE = 256  # shrink the DRAM L3 and working sets together
ACCESSES = 5000  # trace records per core


def run_benchmark(config, name: str) -> None:
    bench = scale_benchmark(get_benchmark(name), SCALE)
    schemes = standard_schemes(config)
    rows = []
    reference_ipc = None
    for scheme_name in ("Base", "Hard+Sys", "DRVR", "UDRVR+PR", "ora-64x64"):
        scheme = schemes[scheme_name]
        result = SystemSimulator(
            config, scheme, bench, accesses_per_core=ACCESSES, seed=3,
            warmup_accesses=3000,  # bring the scaled L3 to steady state
        ).run()
        if reference_ipc is None:
            reference_ipc = result.ipc
        stats = result.stats
        energy = EnergyModel(config, scheme).report(stats, result.elapsed_s)
        rows.append(
            [
                scheme_name,
                result.ipc,
                result.ipc / reference_ipc,
                stats.read_latency_sum / max(1, stats.reads) * 1e9,
                stats.write_latency_sum / max(1, stats.writes) * 1e9,
                stats.write_bursts,
                energy.total * 1e3,
            ]
        )
    print(
        format_table(
            ["scheme", "IPC", "speedup", "avg read (ns)", "avg write (ns)",
             "bursts", "energy (mJ)"],
            rows,
            title=f"{name}: {bench.description}",
        )
    )
    print()


def main() -> None:
    config = default_config().with_cpu(
        l3_bytes_per_core=(32 << 20) // SCALE
    )
    print(
        "Trace-driven simulation of the 64 GB ReRAM main memory "
        f"(8 cores, {ACCESSES} L2-misses/core, 1/{SCALE} sampling scale)\n"
    )
    run_benchmark(config, "mcf_m")  # the paper's most write-bound workload
    run_benchmark(config, "zeu_m")  # light write traffic: small gains


if __name__ == "__main__":
    main()
