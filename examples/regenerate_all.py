#!/usr/bin/env python3
"""Regenerate every non-simulation figure and export the raw data.

Runs each circuit/array/write-path experiment driver, prints its
summary, and writes JSON (plus CSV for table-shaped results) under
``results/`` — everything an external plotting stack needs to redraw
the paper's figures.  The simulation-backed figures (5c, 15-20) are
omitted here because they take minutes to hours; run them via
``pytest benchmarks/ --benchmark-only`` or ``python -m repro fig15``.

Run:  python examples/regenerate_all.py [output_dir]
"""

import pathlib
import sys

from repro.analysis import (
    export_csv_tables,
    export_json,
    fig01e,
    fig04,
    fig05b,
    fig05d,
    fig06,
    fig07b,
    fig09,
    fig11,
    fig11a,
    fig13,
    fig14,
    table_benchmarks,
    table_parameters,
)

DRIVERS = {
    "fig01e": fig01e,
    "fig04": fig04,
    "fig05b": fig05b,
    "fig05d": fig05d,
    "fig06": fig06,
    "fig07b": fig07b,
    "fig09": fig09,
    "fig11a": fig11a,
    "fig11": fig11,
    "fig13": fig13,
    "fig14": fig14,
    "table_benchmarks": table_benchmarks,
    "table_parameters": table_parameters,
}


def main() -> None:
    out = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    out.mkdir(parents=True, exist_ok=True)
    for name, driver in DRIVERS.items():
        print(f"running {name} ...", flush=True)
        payload = driver()
        export_json(payload, out / f"{name}.json")
        tables = export_csv_tables(payload, out, prefix=name)
        extras = f" + {len(tables)} csv" if tables else ""
        print(f"  wrote {out / (name + '.json')}{extras}")
    print(f"\nAll circuit-level experiment data regenerated under {out}/.")


if __name__ == "__main__":
    main()
