#!/usr/bin/env python3
"""Failure injection: validate the lifetime model by simulation.

The Fig. 5b lifetimes come from an analytic model (perfect wear
leveling, uniform wear, ECP absorbing the weakest cells).  This example
*simulates* the wear process on a scaled-down bank — per-cell endurance
with process variation, random write masks, inter-line remapping,
intra-line rotation — and compares the first-line-death write count
against the analytic prediction, with and without wear leveling and ECP.

Run:  python examples/failure_injection.py
"""

from repro.analysis.report import format_table
from repro.analysis.sensitivity import sensitivity_report, udrvr_lifetime_metric
from repro.config import default_config
from repro.mem.wear_sim import WearSimParams, WearSimulator


def injection_study() -> None:
    print("=== Monte-Carlo wear injection (scaled bank) ===")
    rows = []
    scenarios = {
        "wear-leveled + ECP-6": WearSimParams(lines=128, mean_endurance=800.0),
        "wear-leveled, no ECP": WearSimParams(
            lines=128, mean_endurance=800.0, ecp_pointers=0
        ),
        "no wear leveling (hot 12.5%)": WearSimParams(
            lines=128, mean_endurance=800.0,
            wear_leveling=False, hot_line_fraction=0.125,
        ),
        "PR-inflated writes (74%)": WearSimParams(
            lines=128, mean_endurance=800.0, cell_write_fraction=0.74
        ),
    }
    for label, params in scenarios.items():
        simulator = WearSimulator(params, seed=11)
        predicted = simulator.analytic_prediction()
        result = simulator.run()
        rows.append(
            [
                label,
                result.line_writes_to_failure,
                f"{predicted:.0f}",
                result.line_writes_to_failure / predicted,
            ]
        )
    print(
        format_table(
            ["scenario", "simulated line-writes", "analytic", "ratio"],
            rows,
            title="first line death (the paper's failure criterion)",
        )
    )


def lifetime_sensitivity() -> None:
    print("\n=== Which parameters move the UDRVR+PR lifetime? ===")
    config = default_config(size=64)  # small array keeps this quick
    rows = [
        [row.parameter, row.low_ratio, row.high_ratio, row.swing]
        for row in sensitivity_report(
            metric=udrvr_lifetime_metric, config=config, delta=0.1
        )
    ]
    print(
        format_table(
            ["parameter (+/-10%)", "low ratio", "high ratio", "swing"],
            rows,
            title="UDRVR+PR lifetime sensitivity (1.0 = baseline)",
        )
    )


def main() -> None:
    injection_study()
    lifetime_sensitivity()


if __name__ == "__main__":
    main()
