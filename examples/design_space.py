#!/usr/bin/env python3
"""Design-space exploration: where do DRVR/PR/UDRVR matter most?

Reproduces the sensitivity story of §VI (Figs. 18-20) at the circuit
level, where it is cheap: sweeps array size, technology node and
selector quality, and reports the worst-case write latency of the
baseline against UDRVR+PR for each design point.

Run:  python examples/design_space.py
"""

from repro import default_config
from repro.analysis.report import format_table
from repro.circuit.wire import wire_resistance
from repro.config import SelectorParams
from repro.techniques import SchemeLatencyModel, make_baseline, make_udrvr_pr


def evaluate(config, label: str) -> list:
    base = SchemeLatencyModel(config, make_baseline(config))
    ours = SchemeLatencyModel(config, make_udrvr_pr(config))
    t_base = base.worst_case_write_latency()
    t_ours = ours.worst_case_write_latency()
    return [label, t_base * 1e9, t_ours * 1e9, t_base / t_ours]


def main() -> None:
    base = default_config()

    print("=== Array size (Fig. 18: bigger arrays, more drop) ===")
    rows = [
        evaluate(base.with_array(size=size), f"{size}x{size}")
        for size in (256, 512, 1024)
    ]
    print(format_table(
        ["array", "Base worst write (ns)", "UDRVR+PR (ns)", "gain x"], rows
    ))

    print("\n=== Technology node (Fig. 19: thinner wires, more drop) ===")
    rows = [
        evaluate(
            base.with_array(tech_node_nm=node, r_wire=wire_resistance(node)),
            f"{node:g} nm ({wire_resistance(node):.1f} ohm)",
        )
        for node in (32.0, 20.0, 10.0)
    ]
    print(format_table(
        ["node", "Base worst write (ns)", "UDRVR+PR (ns)", "gain x"], rows
    ))

    print("\n=== Selector quality (Fig. 20: leakier selectors, more sneak) ===")
    rows = [
        evaluate(
            base.with_array(selector=SelectorParams(kr=kr)), f"Kr = {kr:g}"
        )
        for kr in (500.0, 1000.0, 2000.0)
    ]
    print(format_table(
        ["selector", "Base worst write (ns)", "UDRVR+PR (ns)", "gain x"], rows
    ))


if __name__ == "__main__":
    main()
